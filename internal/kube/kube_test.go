package kube

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestCluster(t *testing.T, nodes ...NodeSpec) (*Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	if len(nodes) == 0 {
		nodes = []NodeSpec{
			{Name: "node-a", GPUs: 4, GPUType: "K80"},
			{Name: "node-b", GPUs: 4, GPUType: "K80"},
		}
	}
	c := NewCluster(Config{Clock: clk}, nodes...)
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

// waitPhase blocks until the named pod reaches phase ph (or test timeout).
func waitPhase(t *testing.T, c *Cluster, clk *clock.Sim, name string, ph PodPhase, timeout time.Duration) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		p := c.Pod(name)
		if p != nil && p.Phase() == ph {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	p := c.Pod(name)
	cur := PodPhase(0)
	if p != nil {
		cur = p.Phase()
	}
	t.Fatalf("pod %s did not reach %v (current %v)", name, ph, cur)
}

func sleeperSpec(name string, d time.Duration, code int) PodSpec {
	return PodSpec{
		Name:          name,
		RestartPolicy: RestartNever,
		Containers: []ContainerSpec{{
			Name:       "main",
			Image:      "test",
			StartDelay: 100 * time.Millisecond,
			Run: func(ctx *ContainerCtx) int {
				ctx.Sleep(d)
				return code
			},
		}},
	}
}

func TestPodRunsToCompletion(t *testing.T) {
	c, clk := newTestCluster(t)
	p, err := c.CreatePod(sleeperSpec("ok-pod", time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("pod did not finish")
	}
	if p.Phase() != PodSucceeded {
		t.Fatalf("phase = %v, want Succeeded", p.Phase())
	}
	_ = clk
}

func TestPodFailureDetected(t *testing.T) {
	c, _ := newTestCluster(t)
	p, err := c.CreatePod(sleeperSpec("bad-pod", 100*time.Millisecond, 2))
	if err != nil {
		t.Fatal(err)
	}
	<-p.Done()
	if p.Phase() != PodFailed {
		t.Fatalf("phase = %v, want Failed", p.Phase())
	}
	exits, code, _ := p.ExitInfo("main")
	if exits != 1 || code != 2 {
		t.Fatalf("exit info = (%d,%d)", exits, code)
	}
}

func TestDuplicatePodName(t *testing.T) {
	c, _ := newTestCluster(t)
	if _, err := c.CreatePod(sleeperSpec("dup", time.Minute, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePod(sleeperSpec("dup", time.Minute, 0)); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestGPUSchedulingCapacity(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"})
	spec := sleeperSpec("gpu-a", time.Hour, 0)
	spec.GPUs = 2
	if _, err := c.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "gpu-a", PodRunning, 30*time.Second)

	// Second pod cannot fit and stays Pending.
	spec2 := sleeperSpec("gpu-b", time.Hour, 0)
	spec2.GPUs = 1
	p2, err := c.CreatePod(spec2)
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(5 * time.Second)
	if p2.Phase() != PodPending {
		t.Fatalf("phase = %v, want Pending while node is full", p2.Phase())
	}
	// Free capacity: delete the first pod; the second schedules.
	if err := c.DeletePod("gpu-a"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "gpu-b", PodRunning, 30*time.Second)
}

func TestGPUTypeConstraint(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n-k80", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n-p100", GPUs: 4, GPUType: "P100"},
	)
	spec := sleeperSpec("wants-p100", time.Hour, 0)
	spec.GPUs = 1
	spec.GPUType = "P100"
	p, err := c.CreatePod(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "wants-p100", PodRunning, 30*time.Second)
	if p.NodeName() != "n-p100" {
		t.Fatalf("scheduled on %s, want n-p100", p.NodeName())
	}
}

func TestGPUsReleasedOnCompletion(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"})
	spec := sleeperSpec("short", 500*time.Millisecond, 0)
	spec.GPUs = 2
	p, _ := c.CreatePod(spec)
	<-p.Done()
	clk.Sleep(time.Second)
	if free := c.Nodes()[0].FreeGPUs(); free != 2 {
		t.Fatalf("free GPUs = %d, want 2", free)
	}
}

func TestRestartOnFailureRetriesUntilSuccess(t *testing.T) {
	c, _ := newTestCluster(t)
	spec := PodSpec{
		Name:          "flaky",
		RestartPolicy: RestartOnFailure,
		Containers: []ContainerSpec{{
			Name:       "main",
			StartDelay: 50 * time.Millisecond,
			Run: func(ctx *ContainerCtx) int {
				if ctx.Restart() < 2 {
					return 1 // fail twice, then succeed
				}
				return 0
			},
		}},
	}
	p, err := c.CreatePod(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	case <-time.After(20 * time.Second):
		t.Fatal("pod did not finish")
	}
	if p.Phase() != PodSucceeded {
		t.Fatalf("phase = %v, want Succeeded", p.Phase())
	}
	if p.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2", p.Restarts())
	}
}

func TestCrashContainerInPlaceRestart(t *testing.T) {
	c, clk := newTestCluster(t)
	spec := PodSpec{
		Name:          "server",
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 100 * time.Millisecond}},
	}
	p, err := c.CreatePod(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "server", PodRunning, 30*time.Second)
	if err := c.CrashContainer("server", "srv"); err != nil {
		t.Fatal(err)
	}
	// First restart is immediate (no CrashLoopBackOff): the process is
	// running again within ~StartDelay.
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		if _, _, running := p.ExitInfo("srv"); running && p.Restarts() == 1 {
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("container not restarted; restarts=%d", p.Restarts())
}

func TestRepeatedCrashesBackOff(t *testing.T) {
	c, clk := newTestCluster(t)
	spec := PodSpec{
		Name:          "crashloop",
		RestartPolicy: RestartAlways,
		Containers: []ContainerSpec{{
			Name:       "main",
			StartDelay: 10 * time.Millisecond,
			Run:        func(ctx *ContainerCtx) int { return 1 }, // crash instantly
		}},
	}
	p, err := c.CreatePod(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	deadline := start.Add(40 * time.Second)
	for clk.Now().Before(deadline) && p.Restarts() < 3 {
		clk.Sleep(100 * time.Millisecond)
	}
	if p.Restarts() < 3 {
		t.Fatalf("restarts = %d, want >= 3", p.Restarts())
	}
	// Three restarts require at least base+2*base = 30s of backoff.
	if elapsed := clk.Since(start); elapsed < 20*time.Second {
		t.Fatalf("crashloop restarted too fast: %v", elapsed)
	}
}

func TestDeploymentMaintainsReplicas(t *testing.T) {
	c, clk := newTestCluster(t)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "api"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 200 * time.Millisecond}},
	}
	d, err := c.CreateDeployment("api", 2, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "api", 2, 30*time.Second)

	// Kill one replica: the deployment recreates it (with a new name —
	// the victim must be fully gone, not just counted).
	victim := d.PodNames()[0]
	if err := c.DeletePod(victim); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) {
		running := 0
		victimSeen := false
		for _, p := range c.Pods(map[string]string{"app": "api"}) {
			if p.Name() == victim {
				victimSeen = true
			}
			if p.Phase() == PodRunning {
				running++
			}
		}
		if !victimSeen && running == 2 {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatal("deployment did not replace the deleted replica")
}

func TestDeploymentScale(t *testing.T) {
	c, clk := newTestCluster(t)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "api"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 50 * time.Millisecond}},
	}
	d, err := c.CreateDeployment("api", 1, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Scale(3); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "api", 3, 30*time.Second)
	if err := d.Scale(1); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "api", 1, 30*time.Second)
}

func waitReplicas(t *testing.T, c *Cluster, clk *clock.Sim, app string, n int, timeout time.Duration) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		running := 0
		for _, p := range c.Pods(map[string]string{"app": app}) {
			if p.Phase() == PodRunning {
				running++
			}
		}
		if running == n {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("app %s never reached %d running replicas", app, n)
}

func TestStatefulSetStableIdentity(t *testing.T) {
	c, clk := newTestCluster(t)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "learner"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "learn", StartDelay: 100 * time.Millisecond}},
	}
	s, err := c.CreateStatefulSet("learner", 2, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "learner-0", PodRunning, 30*time.Second)
	waitPhase(t, c, clk, "learner-1", PodRunning, 30*time.Second)

	// Delete ordinal 1: a pod with the SAME name must come back.
	if err := c.DeletePod("learner-1"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "learner-1", PodRunning, 30*time.Second)
	if got := len(s.Pods()); got != 2 {
		t.Fatalf("live replicas = %d, want 2", got)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	c, _ := newTestCluster(t)
	j, err := c.CreateJob("guardian", 3, PodSpec{
		Containers: []ContainerSpec{{
			Name:       "main",
			StartDelay: 50 * time.Millisecond,
			Run:        func(ctx *ContainerCtx) int { return 0 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(20 * time.Second):
		t.Fatal("job did not finish")
	}
	succ, failed, attempts := j.Status()
	if !succ || failed || attempts != 1 {
		t.Fatalf("status = (%v,%v,%d)", succ, failed, attempts)
	}
}

func TestJobRetriesThenSucceeds(t *testing.T) {
	c, _ := newTestCluster(t)
	// Fails twice (one per pod attempt), then succeeds. Attempt number
	// is derivable from the pod name suffix.
	j, err := c.CreateJob("guardian", 5, PodSpec{
		Containers: []ContainerSpec{{
			Name:       "main",
			StartDelay: 20 * time.Millisecond,
			Run: func(ctx *ContainerCtx) int {
				if strings.HasSuffix(ctx.PodName(), "-a0") || strings.HasSuffix(ctx.PodName(), "-a1") {
					return 1
				}
				return 0
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	succ, failed, attempts := j.Status()
	if !succ || failed || attempts != 3 {
		t.Fatalf("status = (%v,%v,%d), want success after 3 attempts", succ, failed, attempts)
	}
}

func TestJobFailsAfterBackoffLimit(t *testing.T) {
	c, _ := newTestCluster(t)
	j, err := c.CreateJob("doomed", 2, PodSpec{
		Containers: []ContainerSpec{{
			Name:       "main",
			StartDelay: 20 * time.Millisecond,
			Run:        func(ctx *ContainerCtx) int { return 1 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	succ, failed, attempts := j.Status()
	if succ || !failed || attempts != 3 {
		t.Fatalf("status = (%v,%v,%d), want permanent failure after 3 attempts", succ, failed, attempts)
	}
}

func TestNodeCrashReschedulesDeployment(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "api"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 100 * time.Millisecond}},
	}
	if _, err := c.CreateDeployment("api", 1, tmpl); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "api", 1, 30*time.Second)
	node := c.Pods(map[string]string{"app": "api"})[0].NodeName()
	if err := c.CrashNode(node); err != nil {
		t.Fatal(err)
	}
	// A replacement must come up on the surviving node.
	deadline := clk.Now().Add(60 * time.Second)
	for clk.Now().Before(deadline) {
		pods := c.Pods(map[string]string{"app": "api"})
		if len(pods) == 1 && pods[0].Phase() == PodRunning && pods[0].NodeName() != node {
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatal("replacement did not land on the surviving node")
}

func TestNodeRestartRestoresCapacity(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	if err := c.CrashNode("n1"); err != nil {
		t.Fatal(err)
	}
	spec := sleeperSpec("stuck", time.Hour, 0)
	p, _ := c.CreatePod(spec)
	clk.Sleep(2 * time.Second)
	if p.Phase() != PodPending {
		t.Fatalf("phase = %v, want Pending on dead cluster", p.Phase())
	}
	if err := c.RestartNode("n1"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "stuck", PodRunning, 30*time.Second)
}

func TestNetworkPolicyIsolation(t *testing.T) {
	c, clk := newTestCluster(t)
	mk := func(name string, labels map[string]string) {
		spec := PodSpec{
			Name:          name,
			Labels:        labels,
			RestartPolicy: RestartAlways,
			Containers:    []ContainerSpec{{Name: "c", StartDelay: 10 * time.Millisecond}},
		}
		if _, err := c.CreatePod(spec); err != nil {
			t.Fatal(err)
		}
		waitPhase(t, c, clk, name, PodRunning, 30*time.Second)
	}
	mk("learner-t1", map[string]string{"role": "learner", "tenant": "t1", "job": "j1"})
	mk("helper-t1", map[string]string{"role": "helper", "tenant": "t1", "job": "j1"})
	mk("learner-t2", map[string]string{"role": "learner", "tenant": "t2", "job": "j2"})
	mk("lcm", map[string]string{"role": "platform"})

	// Default allow before policies exist.
	if !c.CanConnect("learner-t2", "learner-t1") {
		t.Fatal("default should allow")
	}
	// Isolate job j1's learners: only same-job pods may connect.
	c.ApplyNetworkPolicy(NetworkPolicy{
		Name:      "isolate-j1",
		AppliesTo: map[string]string{"role": "learner", "job": "j1"},
		AllowFrom: []map[string]string{{"job": "j1"}},
	})
	if !c.CanConnect("helper-t1", "learner-t1") {
		t.Fatal("same-job helper should connect")
	}
	if c.CanConnect("learner-t2", "learner-t1") {
		t.Fatal("cross-tenant learner should be blocked")
	}
	if c.CanConnect("lcm", "learner-t1") {
		t.Fatal("platform pod should be blocked from learner ingress")
	}
	// Unprotected pods remain reachable.
	if !c.CanConnect("learner-t1", "lcm") {
		t.Fatal("learner egress to unprotected pod should pass (policy is ingress-only)")
	}
	c.RemoveNetworkPolicy("isolate-j1")
	if !c.CanConnect("learner-t2", "learner-t1") {
		t.Fatal("removal should restore default allow")
	}
}

func TestWatchObservesLifecycle(t *testing.T) {
	c, _ := newTestCluster(t)
	events, cancel := c.Watch()
	defer cancel()
	if _, err := c.CreatePod(sleeperSpec("observed", 200*time.Millisecond, 0)); err != nil {
		t.Fatal(err)
	}
	var seen []string
	deadline := time.After(10 * time.Second)
	for len(seen) < 4 {
		select {
		case ev := <-events:
			if ev.Pod == "observed" {
				seen = append(seen, ev.Phase.String())
			}
		case <-deadline:
			t.Fatalf("timed out; saw %v", seen)
		}
	}
	want := []string{"Pending", "ContainerCreating", "Running", "Succeeded"}
	for i, w := range want {
		if seen[i] != w {
			t.Fatalf("event sequence = %v, want %v", seen, want)
		}
	}
}

func TestRecoveryTimeWindowForMicroservicePod(t *testing.T) {
	// Shape check for Fig. 4: deleting a Go-microservice pod managed by
	// a Deployment recovers (replacement Running) within a few seconds
	// of virtual time.
	c, clk := newTestCluster(t)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "api"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 3 * time.Second}},
	}
	if _, err := c.CreateDeployment("api", 1, tmpl); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "api", 1, 60*time.Second)

	victim := c.Pods(map[string]string{"app": "api"})[0].Name()
	start := clk.Now()
	if err := c.DeletePod(victim); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(60 * time.Second)
	for clk.Now().Before(deadline) {
		pods := c.Pods(map[string]string{"app": "api"})
		if len(pods) == 1 && pods[0].Name() != victim && pods[0].Phase() == PodRunning {
			rec := clk.Since(start)
			if rec < 2*time.Second || rec > 8*time.Second {
				t.Fatalf("recovery = %v, want 2-8s", rec)
			}
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no recovery observed")
}
