package kube

// gangQueue is the scheduler's pending queue: gangs ordered by priority
// (descending), FIFO within a priority level (ascending submission
// sequence). A sorted slice keeps the order deterministic and makes the
// backfill scan (walk everything behind the head) trivial.
type gangQueue struct {
	items []*Gang
}

// push inserts g keeping the (priority desc, seq asc) order.
func (q *gangQueue) push(g *Gang) {
	at := len(q.items)
	for i, cur := range q.items {
		if less(g, cur) {
			at = i
			break
		}
	}
	q.items = append(q.items, nil)
	copy(q.items[at+1:], q.items[at:])
	q.items[at] = g
}

// less orders a before b: higher priority first, earlier submission
// breaking ties.
func less(a, b *Gang) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.seq < b.seq
}

// head returns the highest-priority pending gang, or nil.
func (q *gangQueue) head() *Gang {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// remove deletes g from the queue, reporting whether it was present.
func (q *gangQueue) remove(g *Gang) bool {
	for i, cur := range q.items {
		if cur == g {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// len returns the number of pending gangs.
func (q *gangQueue) len() int { return len(q.items) }

// at returns the i-th gang in queue order.
func (q *gangQueue) at(i int) *Gang { return q.items[i] }
