package kube

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func newGangCluster(t *testing.T, cfg Config, nodes ...NodeSpec) (*Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	cfg.Clock = clk
	c := NewCluster(cfg, nodes...)
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

// memberSpec builds one gang member pod that runs until killed.
func memberSpec(gang string, ordinal, gpus int) PodSpec {
	return PodSpec{
		Name:          fmt.Sprintf("%s-%d", gang, ordinal),
		Gang:          gang,
		GPUs:          gpus,
		RestartPolicy: RestartNever,
		Labels:        map[string]string{"gang": gang},
		Containers:    []ContainerSpec{{Name: "m", StartDelay: 10 * time.Millisecond}},
	}
}

// waitGangState polls until the gang reaches the wanted state.
func waitGangState(t *testing.T, clk *clock.Sim, g *Gang, want GangState, timeout time.Duration) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if g.State() == want {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("gang %s state = %v, want %v", g.Name(), g.State(), want)
}

func TestGangAdmissionAllOrNothing(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	// 3 members x 2 GPUs = 6 of 8: fits (4 on n1, 2 on n2).
	a, err := c.SubmitGang(GangSpec{Name: "gang-a", Members: 3, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if a.State() != GangAdmitted {
		t.Fatalf("gang-a state = %v, want Admitted", a.State())
	}
	// 2 members x 2 GPUs = 4 > 2 free: must NOT partially admit.
	b, err := c.SubmitGang(GangSpec{Name: "gang-b", Members: 2, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != GangPending {
		t.Fatalf("gang-b state = %v, want Pending", b.State())
	}
	if got := len(b.NodeReservations()); got != 0 {
		t.Fatalf("pending gang holds reservations: %v", b.NodeReservations())
	}
	// Releasing A admits B in full.
	c.CancelGang("gang-a")
	waitGangState(t, clk, b, GangAdmitted, 10*time.Second)
	total := 0
	for _, k := range b.NodeReservations() {
		total += k
	}
	if total != 4 {
		t.Fatalf("gang-b reserved %d GPUs, want 4 (%v)", total, b.NodeReservations())
	}
}

func TestGangSubmitIdempotent(t *testing.T) {
	c, _ := newGangCluster(t, Config{}, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	g1, err := c.SubmitGang(GangSpec{Name: "g", Members: 1, GPUsPerMember: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.SubmitGang(GangSpec{Name: "g", Members: 1, GPUsPerMember: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("resubmission returned a different gang handle")
	}
	if _, err := c.SubmitGang(GangSpec{Name: "", Members: 1}); err == nil {
		t.Fatal("nameless gang accepted")
	}
	if _, err := c.SubmitGang(GangSpec{Name: "x", Members: 0}); err == nil {
		t.Fatal("memberless gang accepted")
	}
}

func TestGangUnsatisfiableDemandRejected(t *testing.T) {
	c, _ := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 2, GPUType: "P100"},
	)
	cases := []struct {
		name string
		spec GangSpec
		ok   bool
	}{
		{"fits", GangSpec{Name: "a", Members: 2, GPUsPerMember: 1, GPUType: "K80"}, true},
		{"exceeds-total", GangSpec{Name: "b", Members: 3, GPUsPerMember: 1, GPUType: "K80"}, false},
		{"member-too-big-for-any-node", GangSpec{Name: "c", Members: 1, GPUsPerMember: 3}, false},
		{"wrong-type-capacity-excluded", GangSpec{Name: "d", Members: 2, GPUsPerMember: 1, GPUType: "V100"}, false},
		{"untyped-uses-all-nodes", GangSpec{Name: "e", Members: 4, GPUsPerMember: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.SubmitGang(tc.spec)
			if tc.ok && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("unsatisfiable gang accepted")
				}
				if !errors.Is(err, ErrGangUnsatisfiable) {
					t.Fatalf("error = %v, want ErrGangUnsatisfiable", err)
				}
			}
		})
	}
}

func TestGangPodsBindToReservation(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	g, err := c.SubmitGang(GangSpec{Name: "g", Members: 2, GPUsPerMember: 3, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if g.State() != GangAdmitted {
		t.Fatalf("state = %v", g.State())
	}
	for i := 0; i < 2; i++ {
		if _, err := c.CreatePod(memberSpec("g", i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	waitPhase(t, c, clk, "g-0", PodRunning, 30*time.Second)
	waitPhase(t, c, clk, "g-1", PodRunning, 30*time.Second)
	// The members landed on the reserved nodes, one per node.
	res := g.NodeReservations()
	for _, p := range c.Pods(map[string]string{"gang": "g"}) {
		if res[p.NodeName()] != 3 {
			t.Fatalf("pod %s on %s, reservations %v", p.Name(), p.NodeName(), res)
		}
	}
	// A non-gang pod cannot take the reserved (but idle-unbound) capacity:
	// only 1 GPU per node remains truly free.
	big := sleeperSpec("intruder", time.Hour, 0)
	big.GPUs = 2
	p, err := c.CreatePod(big)
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(3 * time.Second)
	if p.Phase() != PodPending {
		t.Fatalf("intruder phase = %v, want Pending against reservation", p.Phase())
	}
}

// TestMixedWorkloadLivelockVsGang is the acceptance demonstration: a
// mixed workload whose members rendezvous (hold their GPUs until every
// peer has started) deadlocks under per-pod placement but completes
// under gang scheduling.
func TestMixedWorkloadLivelockVsGang(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "n1", GPUs: 4, GPUType: "K80"},
		{Name: "n2", GPUs: 4, GPUType: "K80"},
	}
	// Two 4-member jobs with mixed member sizes (2,2,1,1 GPUs): each
	// needs 6 of the 8 GPUs, so only one can run at a time. Each member
	// registers its start on a monotone counter and holds its GPUs until
	// every peer of its job has registered — an MPI-style rendezvous.
	memberGPUs := [4]int{2, 2, 1, 1}
	type rendezvous struct{ started [2]int32 }
	rdv := func(r *rendezvous, job int) ProcessFunc {
		return func(ctx *ContainerCtx) int {
			atomic.AddInt32(&r.started[job], 1)
			for atomic.LoadInt32(&r.started[job]) < 4 {
				if !ctx.Sleep(200 * time.Millisecond) {
					return 137
				}
			}
			return 0
		}
	}
	jobs := []string{"joba", "jobb"}
	makePod := func(c *Cluster, r *rendezvous, job, member int, gang string) {
		spec := PodSpec{
			Name:          fmt.Sprintf("%s-%d", jobs[job], member),
			Gang:          gang,
			GPUs:          memberGPUs[member],
			GPUType:       "K80",
			RestartPolicy: RestartNever,
			Labels:        map[string]string{"job": jobs[job]},
			Containers: []ContainerSpec{{
				Name: "m", StartDelay: 10 * time.Millisecond, Run: rdv(r, job),
			}},
		}
		if _, err := c.CreatePod(spec); err != nil {
			t.Fatal(err)
		}
	}
	allDone := func(c *Cluster, clk *clock.Sim, timeout time.Duration) bool {
		deadline := clk.Now().Add(timeout)
		for clk.Now().Before(deadline) {
			done := 0
			for _, j := range jobs {
				if len(c.Pods(map[string]string{"job": j})) == 0 {
					done++ // all members Succeeded and forgotten
				}
			}
			if done == len(jobs) {
				return true
			}
			clk.Sleep(time.Second)
		}
		return false
	}

	// Per-pod placement (seed behavior): the 2-GPU members of both jobs
	// interleave onto the nodes and exhaust capacity, the 1-GPU members
	// never place, and neither rendezvous completes — deadlock.
	c1, clk1 := newGangCluster(t, Config{}, nodes...)
	var r1 rendezvous
	for member := 0; member < 2; member++ { // a0,b0 then a1,b1: 8 GPUs gone
		for job := range jobs {
			makePod(c1, &r1, job, member, "")
			waitPhase(t, c1, clk1, fmt.Sprintf("%s-%d", jobs[job], member), PodRunning, 30*time.Second)
		}
	}
	for member := 2; member < 4; member++ {
		for job := range jobs {
			makePod(c1, &r1, job, member, "")
		}
	}
	if allDone(c1, clk1, time.Minute) {
		t.Fatal("per-pod placement unexpectedly completed the contended workload")
	}

	// Gang scheduling, same interleaved workload: jobs admit
	// whole-or-not, so they serialize and both finish.
	c2, clk2 := newGangCluster(t, Config{}, nodes...)
	var r2 rendezvous
	for job := range jobs {
		if _, err := c2.SubmitGang(GangSpec{
			Name: "gang-" + jobs[job], Tenant: jobs[job], Members: 4, GPUsPerMember: 2, GPUType: "K80",
		}); err != nil {
			t.Fatal(err)
		}
	}
	for member := 0; member < 4; member++ {
		for job := range jobs {
			makePod(c2, &r2, job, member, "gang-"+jobs[job])
		}
	}
	// Member pods exit but gangs hold their reservation until cancelled;
	// cancel each gang as its job drains so the next can admit.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, job := range jobs {
				if len(c2.Pods(map[string]string{"job": job})) == 0 {
					c2.CancelGang("gang-" + job)
				}
			}
			clk2.Sleep(500 * time.Millisecond)
		}
	}()
	if !allDone(c2, clk2, 5*time.Minute) {
		t.Fatal("gang scheduling did not complete the contended workload")
	}
}

func TestGangPriorityOrder(t *testing.T) {
	c, _ := newGangCluster(t, Config{}, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	// Fill the node so submissions queue.
	blocker, err := c.SubmitGang(GangSpec{Name: "blocker", Priority: 5, Members: 1, GPUsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocker.State() != GangAdmitted {
		t.Fatal("blocker not admitted")
	}
	low, _ := c.SubmitGang(GangSpec{Name: "low", Priority: 1, Members: 1, GPUsPerMember: 4})
	high, _ := c.SubmitGang(GangSpec{Name: "high", Priority: 3, Members: 1, GPUsPerMember: 4})
	// Same priority as low, later arrival: FIFO within a level.
	low2, _ := c.SubmitGang(GangSpec{Name: "low2", Priority: 1, Members: 1, GPUsPerMember: 4})

	c.CancelGang("blocker")
	if high.State() != GangAdmitted {
		t.Fatalf("high = %v, want Admitted first", high.State())
	}
	if low.State() != GangPending || low2.State() != GangPending {
		t.Fatal("low-priority gangs admitted out of order")
	}
	c.CancelGang("high")
	if low.State() != GangAdmitted {
		t.Fatalf("low = %v, want Admitted before low2 (FIFO)", low.State())
	}
	if low2.State() != GangPending {
		t.Fatal("low2 jumped the FIFO order")
	}
}

func TestPreemptionEvictsLowestPriorityFirst(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	mkGang := func(name string, prio, members, gpus int) *Gang {
		g, err := c.SubmitGang(GangSpec{Name: name, Tenant: name, Priority: prio, Members: members, GPUsPerMember: gpus, GPUType: "K80"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < members; i++ {
			if _, err := c.CreatePod(memberSpec(name, i, gpus)); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	lo := mkGang("lo", 1, 4, 1)   // 4 GPUs
	mid := mkGang("mid", 2, 4, 1) // 4 GPUs; cluster now full
	for i := 0; i < 4; i++ {
		waitPhase(t, c, clk, fmt.Sprintf("lo-%d", i), PodRunning, 30*time.Second)
		waitPhase(t, c, clk, fmt.Sprintf("mid-%d", i), PodRunning, 30*time.Second)
	}

	// A high-priority 4-GPU gang preempts exactly the lowest-priority
	// victim (lo), leaving mid running.
	hi, err := c.SubmitGang(GangSpec{Name: "hi", Tenant: "hi", Priority: 9, Members: 4, GPUsPerMember: 1, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	waitGangState(t, clk, lo, GangPreempted, 10*time.Second)
	if mid.State() != GangAdmitted {
		t.Fatalf("mid = %v, want to survive preemption", mid.State())
	}
	waitGangState(t, clk, hi, GangAdmitted, 30*time.Second)
	select {
	case <-lo.Evicted():
	default:
		t.Fatal("lo.Evicted() not closed")
	}
}

func TestPreemptionDisabled(t *testing.T) {
	c, clk := newGangCluster(t, Config{DisablePreemption: true},
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
	)
	lo, err := c.SubmitGang(GangSpec{Name: "lo", Priority: 1, Members: 1, GPUsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.SubmitGang(GangSpec{Name: "hi", Priority: 9, Members: 1, GPUsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(5 * time.Second)
	if lo.State() != GangAdmitted || hi.State() != GangPending {
		t.Fatalf("lo = %v hi = %v, want Admitted/Pending with preemption off", lo.State(), hi.State())
	}
}

func TestPreemptionSparesHigherAndEqualPriority(t *testing.T) {
	c, clk := newGangCluster(t, Config{}, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	eq, err := c.SubmitGang(GangSpec{Name: "eq", Priority: 5, Members: 1, GPUsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.SubmitGang(GangSpec{Name: "hi", Priority: 5, Members: 1, GPUsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(5 * time.Second)
	if eq.State() != GangAdmitted || hi.State() != GangPending {
		t.Fatalf("eq = %v hi = %v: equal priority must never preempt", eq.State(), hi.State())
	}
}

func TestPreemptionTenantAware(t *testing.T) {
	// Two priority-1 gangs from different tenants; tenant "hog" holds
	// more of the cluster. The hog's gang is evicted first.
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	mk := func(name, tenant string, members int) *Gang {
		g, err := c.SubmitGang(GangSpec{Name: name, Tenant: tenant, Priority: 1, Members: members, GPUsPerMember: 1, GPUType: "K80"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < members; i++ {
			if _, err := c.CreatePod(memberSpec(name, i, 1)); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	hogA := mk("hog-a", "hog", 3)
	hogB := mk("hog-b", "hog", 3) // tenant hog holds 6 GPUs
	small := mk("small", "modest", 2)
	for _, g := range []*Gang{hogA, hogB, small} {
		waitGangState(t, clk, g, GangAdmitted, 10*time.Second)
	}
	clk.Sleep(2 * time.Second)

	// Needs 3 GPUs: one hog gang suffices; the modest tenant survives.
	hi, err := c.SubmitGang(GangSpec{Name: "hi", Tenant: "vip", Priority: 9, Members: 3, GPUsPerMember: 1, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	waitGangState(t, clk, hi, GangAdmitted, 30*time.Second)
	if small.State() != GangAdmitted {
		t.Fatalf("modest tenant's gang = %v, want to survive while the hog pays", small.State())
	}
	if hogA.State() == GangAdmitted && hogB.State() == GangAdmitted {
		t.Fatal("no hog gang was preempted")
	}
}

func TestBackfillFillsFragmentationHoles(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 6, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 6, GPUType: "K80"},
	)
	// Occupy n1 fully (6) and n2 partially (2): free = 4 on n2.
	blocker, err := c.SubmitGang(GangSpec{Name: "blocker", Priority: 5, Members: 4, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if blocker.State() != GangAdmitted {
		t.Fatal("blocker not admitted")
	}
	// Head: 2 members x 4 GPUs = 8; only floor(4/4)=1 member placeable,
	// so it waits.
	head, err := c.SubmitGang(GangSpec{Name: "head", Priority: 5, Members: 2, GPUsPerMember: 4, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if head.State() != GangPending {
		t.Fatalf("head = %v, want Pending", head.State())
	}
	// free on n2 = 4, head member size 4 -> remainder 4%4 = 0: a 1-GPU
	// job would eat head-useful capacity and must NOT backfill.
	greedy, err := c.SubmitGang(GangSpec{Name: "greedy", Priority: 1, Members: 1, GPUsPerMember: 1, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(2 * time.Second)
	if greedy.State() != GangPending {
		t.Fatalf("greedy = %v, want Pending (would shrink head's hole)", greedy.State())
	}
	// Open a true fragmentation hole: releasing the blocker frees 6+2;
	// head takes 4+4, leaving 2+0... instead, shrink head demand: cancel
	// head, re-submit workload where remainder exists.
	c.CancelGang("blocker")
	waitGangState(t, clk, head, GangAdmitted, 10*time.Second)
	// Now free = 2 on n1, 2 on n2. New head: 1 member x 4 -> waits;
	// remainder on each node = 2 % 4 = 2: a 2-GPU small job backfills.
	head2, err := c.SubmitGang(GangSpec{Name: "head2", Priority: 5, Members: 1, GPUsPerMember: 4, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if head2.State() != GangPending {
		t.Fatalf("head2 = %v, want Pending", head2.State())
	}
	// greedy reached the head of the queue when the blocker freed
	// capacity, so it admitted normally — backfill denial only protects
	// the current head.
	if greedy.State() != GangAdmitted {
		t.Fatalf("greedy = %v, want Admitted once it became schedulable", greedy.State())
	}
	small, err := c.SubmitGang(GangSpec{Name: "small", Priority: 1, Members: 1, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if small.State() != GangAdmitted {
		t.Fatalf("small = %v, want backfilled into the 2-GPU hole", small.State())
	}
	if head2.State() != GangPending {
		t.Fatalf("head2 = %v, want still Pending after backfill", head2.State())
	}
}

func TestBackfillDisabled(t *testing.T) {
	c, clk := newGangCluster(t, Config{DisableBackfill: true},
		NodeSpec{Name: "n1", GPUs: 6, GPUType: "K80"},
	)
	if _, err := c.SubmitGang(GangSpec{Name: "blocker", Members: 1, GPUsPerMember: 4}); err != nil {
		t.Fatal(err)
	}
	head, _ := c.SubmitGang(GangSpec{Name: "head", Members: 1, GPUsPerMember: 4})
	small, _ := c.SubmitGang(GangSpec{Name: "small", Members: 1, GPUsPerMember: 2})
	clk.Sleep(2 * time.Second)
	if head.State() != GangPending || small.State() != GangPending {
		t.Fatalf("head = %v small = %v, want both Pending with backfill off", head.State(), small.State())
	}
}

func TestGangNodeFailureRepairsOnSpare(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n3", GPUs: 2, GPUType: "K80"},
	)
	g, err := c.SubmitGang(GangSpec{Name: "g", Members: 2, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.CreatePod(memberSpec("g", i, 2)); err != nil {
			t.Fatal(err)
		}
		waitPhase(t, c, clk, fmt.Sprintf("g-%d", i), PodRunning, 30*time.Second)
	}
	var deadNode string
	for _, p := range c.Pods(map[string]string{"gang": "g"}) {
		if p.Name() == "g-1" {
			deadNode = p.NodeName()
		}
	}
	if err := c.CrashNode(deadNode); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(time.Second)
	// The reservation migrated to the spare node; a recreated member
	// binds there.
	if g.Degraded() {
		t.Fatal("gang still degraded despite spare capacity")
	}
	if _, err := c.CreatePod(memberSpec("g", 1, 2)); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "g-1", PodRunning, 30*time.Second)
	repl := c.Pod("g-1")
	if repl.NodeName() == deadNode {
		t.Fatalf("replacement landed on the dead node %s", deadNode)
	}
}

func TestGangDegradedWithoutSpareThenRepairs(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 2, GPUType: "K80"},
	)
	g, err := c.SubmitGang(GangSpec{Name: "g", Members: 2, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode("n2"); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(time.Second)
	if !g.Degraded() {
		t.Fatalf("gang not degraded after losing half its reservation (state %v)", g.State())
	}
	if err := c.RestartNode("n2"); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(time.Second)
	if g.Degraded() {
		t.Fatal("gang not repaired after node restart")
	}
	total := 0
	for _, k := range g.NodeReservations() {
		total += k
	}
	if total != 4 {
		t.Fatalf("reservation after repair = %d GPUs, want 4 (%v)", total, g.NodeReservations())
	}
}

func TestCancelGangKillsMembersAndFreesCapacity(t *testing.T) {
	c, clk := newGangCluster(t, Config{}, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	if _, err := c.SubmitGang(GangSpec{Name: "g", Members: 2, GPUsPerMember: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.CreatePod(memberSpec("g", i, 2)); err != nil {
			t.Fatal(err)
		}
		waitPhase(t, c, clk, fmt.Sprintf("g-%d", i), PodRunning, 30*time.Second)
	}
	c.CancelGang("g")
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) {
		if len(c.Pods(map[string]string{"gang": "g"})) == 0 && c.FreeGPUs("") == 4 {
			if c.GangByName("g") != nil {
				t.Fatal("cancelled gang still registered")
			}
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("capacity not reclaimed: free=%d pods=%d", c.FreeGPUs(""), len(c.Pods(map[string]string{"gang": "g"})))
}

// Table-driven check of the pending-queue ordering invariants.
func TestGangQueueOrdering(t *testing.T) {
	mk := func(prio int, seq uint64) *Gang {
		return &Gang{Spec: GangSpec{Name: fmt.Sprintf("g%d-%d", prio, seq), Priority: prio}, seq: seq}
	}
	cases := []struct {
		name string
		in   []*Gang
		want []string
	}{
		{"priority-desc", []*Gang{mk(1, 1), mk(5, 2), mk(3, 3)}, []string{"g5-2", "g3-3", "g1-1"}},
		{"fifo-within-level", []*Gang{mk(2, 3), mk(2, 1), mk(2, 2)}, []string{"g2-1", "g2-2", "g2-3"}},
		{"mixed", []*Gang{mk(0, 1), mk(9, 2), mk(0, 3), mk(9, 4)}, []string{"g9-2", "g9-4", "g0-1", "g0-3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var q gangQueue
			for _, g := range tc.in {
				q.push(g)
			}
			for i, want := range tc.want {
				if got := q.at(i).Spec.Name; got != want {
					t.Fatalf("queue[%d] = %s, want %s", i, got, want)
				}
			}
			head := q.head()
			if !q.remove(head) {
				t.Fatal("remove(head) failed")
			}
			if q.len() != len(tc.want)-1 {
				t.Fatalf("len after remove = %d", q.len())
			}
		})
	}
}
