package kube

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/nfs"
	"repro/internal/trace"
)

// Common errors.
var (
	// ErrPodExists indicates a pod name collision.
	ErrPodExists = errors.New("kube: pod already exists")
	// ErrNoPod indicates the pod does not exist.
	ErrNoPod = errors.New("kube: no such pod")
	// ErrNoNode indicates the node does not exist.
	ErrNoNode = errors.New("kube: no such node")
	// ErrStopped indicates the cluster has been shut down.
	ErrStopped = errors.New("kube: cluster stopped")
)

// Timing models the latency of control-plane and node operations. The
// defaults are calibrated so that component recovery times land in the
// paper's Fig. 4 ranges.
type Timing struct {
	// Schedule is the scheduler's decision latency per pod.
	Schedule time.Duration
	// ContainerCreate is the container runtime setup cost (cached
	// image, cgroups, virtual network).
	ContainerCreate time.Duration
	// VolumeBind is the PVC/NFS mount cost per volume.
	VolumeBind time.Duration
	// ObjectStoreBind is the cloud object-store credential/mount cost
	// for pods that stream training data.
	ObjectStoreBind time.Duration
	// ControllerReact is the watch-to-action latency of controllers.
	ControllerReact time.Duration
	// CrashBackoffBase is the in-place restart backoff after repeated
	// container crashes (the first restart is immediate, as in
	// Kubernetes before CrashLoopBackOff engages).
	CrashBackoffBase time.Duration
	// JitterFraction randomizes each delay by ±fraction.
	JitterFraction float64
}

// DefaultTiming returns the calibrated simulation constants.
func DefaultTiming() Timing {
	return Timing{
		Schedule:         100 * time.Millisecond,
		ContainerCreate:  400 * time.Millisecond,
		VolumeBind:       700 * time.Millisecond,
		ObjectStoreBind:  3 * time.Second,
		ControllerReact:  200 * time.Millisecond,
		CrashBackoffBase: 10 * time.Second,
		JitterFraction:   0.15,
	}
}

// SchedulingPolicy selects the placement strategy.
type SchedulingPolicy int

// Placement strategies.
const (
	// PolicyBinPack fills nodes in name order, maximizing utilization —
	// the default for expensive GPU fleets.
	PolicyBinPack SchedulingPolicy = iota
	// PolicySpread places pods on the node with the most free GPUs,
	// minimizing the blast radius of a node failure (a dependability /
	// utilization tradeoff).
	PolicySpread
)

// String implements fmt.Stringer.
func (p SchedulingPolicy) String() string {
	switch p {
	case PolicyBinPack:
		return "binpack"
	case PolicySpread:
		return "spread"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config configures a simulated cluster.
type Config struct {
	// Clock drives every delay. Required.
	Clock clock.Clock
	// NFS optionally provides the shared-volume server used by PVCs.
	NFS *nfs.Server
	// Timing overrides DefaultTiming when non-zero.
	Timing Timing
	// Scheduling selects the placement strategy (default PolicyBinPack).
	Scheduling SchedulingPolicy
	// DisablePreemption turns off priority preemption in the gang
	// scheduler (admitted gangs are never evicted for higher priority).
	DisablePreemption bool
	// DisableBackfill turns off backfilling small gangs into GPU holes
	// while a large gang waits at the head of the queue.
	DisableBackfill bool
	// EvictionGracePeriod, when positive, turns preemption and node
	// drain into a two-phase protocol: the scheduler posts an eviction
	// intent with this grace deadline instead of killing the gang's pods
	// outright, giving the owner time to checkpoint and AckEviction
	// (deadline expiry force-evicts). Zero keeps the immediate kill.
	EvictionGracePeriod time.Duration
	// Seed makes delay jitter reproducible.
	Seed int64
	// Trace optionally records gang-admission and container-boot spans
	// (queue wait, image pull) into job traces. Nil disables.
	Trace *trace.Recorder
}

// Cluster is the simulated Kubernetes control plane plus its nodes.
type Cluster struct {
	clk    clock.Clock
	nfs    *nfs.Server
	timing Timing
	policy SchedulingPolicy
	trace  *trace.Recorder

	mu         sync.Mutex
	rng        *rand.Rand
	nodes      map[string]*Node
	pods       map[string]*Pod
	policies   map[string]*NetworkPolicy
	nodeClocks map[string]*clock.Skewed
	watchers   []*watchSub
	nameSeq    uint64
	stopped    bool

	ctrl  *controllerManager
	reg   *registry
	sched *gangScheduler
}

// Node is a worker machine with GPU capacity.
type Node struct {
	Spec NodeSpec

	mu       sync.Mutex
	freeGPUs int
	down     bool
	cordoned bool
}

// Cordoned reports whether the node is excluded from scheduling.
func (n *Node) Cordoned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cordoned
}

// Down reports whether the node is crashed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// FreeGPUs reports currently unallocated GPUs.
func (n *Node) FreeGPUs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeGPUs
}

type watchSub struct {
	ch   chan Event
	done chan struct{}
}

// NewCluster creates a cluster with the given worker nodes.
func NewCluster(cfg Config, nodes ...NodeSpec) *Cluster {
	if cfg.Clock == nil {
		panic("kube: Config.Clock is required")
	}
	t := cfg.Timing
	if t == (Timing{}) {
		t = DefaultTiming()
	}
	c := &Cluster{
		clk:        cfg.Clock,
		nfs:        cfg.NFS,
		timing:     t,
		trace:      cfg.Trace,
		policy:     cfg.Scheduling,
		rng:        rand.New(rand.NewSource(cfg.Seed + 1)),
		nodes:      make(map[string]*Node),
		pods:       make(map[string]*Pod),
		policies:   make(map[string]*NetworkPolicy),
		nodeClocks: make(map[string]*clock.Skewed),
	}
	for _, ns := range nodes {
		c.nodes[ns.Name] = &Node{Spec: ns, freeGPUs: ns.GPUs}
	}
	c.ctrl = newControllerManager(c)
	c.reg = newRegistry()
	c.sched = newGangScheduler(c, cfg)
	return c
}

// Clock returns the cluster's time source.
func (c *Cluster) Clock() clock.Clock { return c.clk }

// NFS returns the shared-volume server, if configured.
func (c *Cluster) NFS() *nfs.Server { return c.nfs }

// Stop terminates all pods and controllers.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	pods := make([]*Pod, 0, len(c.pods))
	for _, p := range c.pods {
		pods = append(pods, p)
	}
	sortPodsByName(pods)
	watchers := c.watchers
	c.watchers = nil
	c.mu.Unlock()

	c.ctrl.stop()
	for _, p := range pods {
		p.kill(killDelete)
	}
	for _, w := range watchers {
		close(w.done)
	}
}

// Watch subscribes to pod lifecycle events.
func (c *Cluster) Watch() (events <-chan Event, cancel func()) {
	w := &watchSub{ch: make(chan Event, 1024), done: make(chan struct{})}
	c.mu.Lock()
	c.watchers = append(c.watchers, w)
	c.mu.Unlock()
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			c.mu.Lock()
			for i, x := range c.watchers {
				if x == w {
					c.watchers = append(c.watchers[:i], c.watchers[i+1:]...)
					break
				}
			}
			c.mu.Unlock()
			close(w.done)
		})
	}
	return w.ch, cancel
}

func (c *Cluster) emit(ev Event) {
	ev.Time = c.clk.Now()
	c.mu.Lock()
	watchers := make([]*watchSub, len(c.watchers))
	copy(watchers, c.watchers)
	c.mu.Unlock()
	for _, w := range watchers {
		select {
		case w.ch <- ev:
		case <-w.done:
		}
	}
}

// jitter scales d by 1±JitterFraction using the cluster RNG.
func (c *Cluster) jitter(d time.Duration) time.Duration {
	if c.timing.JitterFraction <= 0 || d <= 0 {
		return d
	}
	c.mu.Lock()
	f := 1 + (c.rng.Float64()*2-1)*c.timing.JitterFraction
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// nextName generates a unique suffixed pod name.
func (c *Cluster) nextName(base string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nameSeq++
	return fmt.Sprintf("%s-%05d", base, c.nameSeq)
}

// CreatePod instantiates spec directly (no controller). The returned pod
// is scheduled and started asynchronously.
func (c *Cluster) CreatePod(spec PodSpec) (*Pod, error) {
	return c.createPodOwned(spec, nil)
}

func (c *Cluster) createPodOwned(spec PodSpec, owner ownerRef) (*Pod, error) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, ErrStopped
	}
	if _, exists := c.pods[spec.Name]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("creating pod %q: %w", spec.Name, ErrPodExists)
	}
	p := newPod(c, spec.clone(), owner)
	c.pods[spec.Name] = p
	c.mu.Unlock()

	c.emit(Event{Type: EventAdded, Pod: spec.Name, Phase: PodPending})
	go p.run()
	return p, nil
}

// Pod returns the named pod, or nil.
func (c *Cluster) Pod(name string) *Pod {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pods[name]
}

// Pods returns all pods matching the label selector (nil matches all),
// sorted by name.
func (c *Cluster) Pods(selector map[string]string) []*Pod {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Pod
	for _, p := range c.pods {
		if labelsMatch(p.Spec.Labels, selector) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// DeletePod removes the pod (kubectl delete pod). Controllers owning the
// pod will create a replacement.
func (c *Cluster) DeletePod(name string) error {
	c.mu.Lock()
	p := c.pods[name]
	c.mu.Unlock()
	if p == nil {
		return fmt.Errorf("deleting pod %q: %w", name, ErrNoPod)
	}
	p.kill(killDelete)
	return nil
}

// DeletePodAndSnapshot kills the named pod and returns every pod
// matching selector as of the same instant, all under one acquisition
// of the registry lock — a single quiescent cut. Recovery measurements
// need this atomicity: a replacement scheduled concurrently can neither
// slip into the "before" set (hiding the recovery) nor be mistaken for
// one (a pod created before the kill counting as the post-fault
// replacement). The returned snapshot includes the victim.
func (c *Cluster) DeletePodAndSnapshot(name string, selector map[string]string) ([]*Pod, error) {
	c.mu.Lock()
	victim := c.pods[name]
	if victim == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("deleting pod %q: %w", name, ErrNoPod)
	}
	var snapshot []*Pod
	for _, p := range c.pods {
		if labelsMatch(p.Spec.Labels, selector) {
			snapshot = append(snapshot, p)
		}
	}
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].Name() < snapshot[j].Name() })
	victim.kill(killDelete)
	c.mu.Unlock()
	return snapshot, nil
}

// SetNodeSkew offsets the node's local clock from the cluster clock
// (positive = the node's clock runs ahead). Software running in the
// node's pods reads time through ContainerCtx.Clock, so its timestamps
// drift while its sleep durations stay true — the clock-skew fault of
// the dependability campaign. A zero offset heals the node.
func (c *Cluster) SetNodeSkew(name string, offset time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; !ok {
		return fmt.Errorf("skewing node %q: %w", name, ErrNoNode)
	}
	if sk, ok := c.nodeClocks[name]; ok {
		sk.SetOffset(offset)
		return nil
	}
	c.nodeClocks[name] = clock.NewSkewed(c.clk, offset)
	return nil
}

// NodeClock returns the named node's local clock: the cluster clock,
// skewed by any offset injected with SetNodeSkew. Unknown or unskewed
// nodes read the cluster clock directly.
func (c *Cluster) NodeClock(name string) clock.Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sk, ok := c.nodeClocks[name]; ok {
		return sk
	}
	return c.clk
}

// CrashContainer kills the named container's process in place (exit 137).
// The kubelet restarts it according to the pod's restart policy.
func (c *Cluster) CrashContainer(podName, containerName string) error {
	c.mu.Lock()
	p := c.pods[podName]
	c.mu.Unlock()
	if p == nil {
		return fmt.Errorf("crashing container %s/%s: %w", podName, containerName, ErrNoPod)
	}
	return p.crashContainer(containerName)
}

// CrashNode fails the node: all its pods terminate as Failed and its
// capacity is withdrawn until RestartNode.
func (c *Cluster) CrashNode(name string) error {
	c.mu.Lock()
	n := c.nodes[name]
	if n == nil {
		c.mu.Unlock()
		return fmt.Errorf("crashing node %q: %w", name, ErrNoNode)
	}
	var victims []*Pod
	for _, p := range c.pods {
		if p.nodeName() == name {
			victims = append(victims, p)
		}
	}
	sortPodsByName(victims)
	c.mu.Unlock()

	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
	c.sched.nodeDown(n)
	for _, p := range victims {
		p.kill(killNodeFailure)
	}
	return nil
}

// RestartNode brings a crashed node back with full capacity.
func (c *Cluster) RestartNode(name string) error {
	c.mu.Lock()
	n := c.nodes[name]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("restarting node %q: %w", name, ErrNoNode)
	}
	n.mu.Lock()
	n.down = false
	n.freeGPUs = n.Spec.GPUs
	n.mu.Unlock()
	c.sched.kick()
	return nil
}

// FreeGPUs returns the cluster's aggregate unallocated GPU count for
// the given type ("" = any), across live schedulable nodes. Controllers
// use it for gang-capacity checks before creating multi-pod workloads.
func (c *Cluster) FreeGPUs(gpuType string) int {
	total := 0
	for _, n := range c.Nodes() {
		n.mu.Lock()
		if !n.down && !n.cordoned && (gpuType == "" || n.Spec.GPUType == gpuType) {
			total += n.freeGPUs
		}
		n.mu.Unlock()
	}
	return total
}

// CordonNode marks the node unschedulable without disturbing its pods
// (kubectl cordon) — the maintenance primitive complementing crash
// recovery.
func (c *Cluster) CordonNode(name string) error {
	c.mu.Lock()
	n := c.nodes[name]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cordoning node %q: %w", name, ErrNoNode)
	}
	n.mu.Lock()
	n.cordoned = true
	n.mu.Unlock()
	return nil
}

// UncordonNode makes the node schedulable again.
func (c *Cluster) UncordonNode(name string) error {
	c.mu.Lock()
	n := c.nodes[name]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("uncordoning node %q: %w", name, ErrNoNode)
	}
	n.mu.Lock()
	n.cordoned = false
	n.mu.Unlock()
	c.sched.kick()
	return nil
}

// DrainNode cordons the node and evicts its pods (kubectl drain). Plain
// pods are deleted immediately and their controllers recreate them on
// other nodes. Gangs holding reservation on the node flow through the
// gang scheduler in reverse-priority order — with a grace period the
// eviction is two-phase (the owner checkpoints before the pods die),
// otherwise it completes immediately — so the holdings ledger stays
// consistent either way, and the scheduler repairs and reschedules the
// freed capacity.
func (c *Cluster) DrainNode(name string) error {
	if err := c.CordonNode(name); err != nil {
		return err
	}
	c.mu.Lock()
	n := c.nodes[name]
	c.mu.Unlock()
	c.sched.drainGangs(n)
	c.mu.Lock()
	var victims []*Pod
	for _, p := range c.pods {
		if p.nodeName() == name && p.Spec.Gang == "" {
			victims = append(victims, p)
		}
	}
	sortPodsByName(victims)
	c.mu.Unlock()
	for _, p := range victims {
		p.kill(killDelete)
	}
	c.sched.kick()
	return nil
}

// Nodes returns the cluster's nodes sorted by name.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// sortPodsByName orders a pod list by name. Pod sets are collected out
// of maps all over the cluster and controllers; every consumer that
// acts on the set (kill, evict, deploy) must see one stable order or
// replayed schedules diverge on map iteration order.
func sortPodsByName(pods []*Pod) {
	sort.Slice(pods, func(i, j int) bool { return pods[i].Name() < pods[j].Name() })
}

// schedule reserves capacity for spec on a node. Gang member pods bind
// to their gang's reservation; everything else goes through the per-pod
// policy placement. Returns nil when nothing fits (yet).
func (c *Cluster) schedule(spec PodSpec) *Node {
	return c.sched.placePod(spec)
}

// release returns a pod's GPU reservation to its gang or node and lets
// the gang scheduler react to the freed capacity.
func (c *Cluster) release(n *Node, spec PodSpec) {
	c.sched.podReleased(n, spec)
}

// forget removes a terminal pod from the registry (kubelet GC).
func (c *Cluster) forget(p *Pod) {
	c.mu.Lock()
	if cur, ok := c.pods[p.Name()]; ok && cur == p {
		delete(c.pods, p.Name())
	}
	c.mu.Unlock()
}

func labelsMatch(labels, selector map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}
