package kube

import (
	"fmt"
	"sync"
)

// controllerManager tracks controller liveness so cluster shutdown can
// stop reconciliation before killing pods.
type controllerManager struct {
	mu      sync.Mutex
	stopped bool
}

func newControllerManager(*Cluster) *controllerManager {
	return &controllerManager{}
}

func (m *controllerManager) stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
}

func (m *controllerManager) running() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.stopped
}

// ---------------------------------------------------------------------
// Deployment: keep N interchangeable replicas alive (DLaaS microservices
// like the API and LCM run as Deployments).

// Deployment reconciles a replica count of a pod template.
type Deployment struct {
	cluster  *Cluster
	name     string
	template PodSpec

	mu       sync.Mutex
	replicas int
	pods     map[string]*Pod
	stopped  bool
}

var _ ownerRef = (*Deployment)(nil)

// CreateDeployment starts a deployment with the given replica count.
func (c *Cluster) CreateDeployment(name string, replicas int, template PodSpec) (*Deployment, error) {
	d := &Deployment{
		cluster:  c,
		name:     name,
		template: template,
		replicas: replicas,
		pods:     make(map[string]*Pod),
	}
	for i := 0; i < replicas; i++ {
		if err := d.createReplica(); err != nil {
			return nil, fmt.Errorf("deployment %s: %w", name, err)
		}
	}
	c.reg.mu.Lock()
	c.reg.deployments[name] = d
	c.reg.mu.Unlock()
	return d, nil
}

// Name returns the deployment name.
func (d *Deployment) Name() string { return d.name }

// PodNames returns the names of the live replicas, sorted.
func (d *Deployment) PodNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.pods))
	for n := range d.pods {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// Scale changes the desired replica count.
func (d *Deployment) Scale(n int) error {
	d.mu.Lock()
	d.replicas = n
	// Scale-down victims are chosen by name, not map order: an
	// arbitrary pick would make two replays of one schedule kill
	// different replicas.
	var excess []*Pod
	if remove := len(d.pods) - n; remove > 0 {
		names := make([]string, 0, len(d.pods))
		for name := range d.pods {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names[len(names)-remove:] {
			excess = append(excess, d.pods[name])
			delete(d.pods, name)
		}
	}
	d.mu.Unlock()
	for _, p := range excess {
		p.kill(killDelete)
	}
	for {
		d.mu.Lock()
		need := d.replicas - len(d.pods)
		d.mu.Unlock()
		if need <= 0 {
			return nil
		}
		if err := d.createReplica(); err != nil {
			return err
		}
	}
}

// Delete stops reconciliation and kills the replicas.
func (d *Deployment) Delete() {
	d.mu.Lock()
	d.stopped = true
	pods := make([]*Pod, 0, len(d.pods))
	for _, p := range d.pods {
		pods = append(pods, p)
	}
	sortPodsByName(pods)
	d.pods = map[string]*Pod{}
	d.mu.Unlock()
	for _, p := range pods {
		p.kill(killDelete)
	}
}

func (d *Deployment) createReplica() error {
	spec := d.template.clone()
	spec.Name = d.cluster.nextName(d.name)
	p, err := d.cluster.createPodOwned(spec, d)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		p.kill(killDelete)
		return nil
	}
	d.pods[spec.Name] = p
	d.mu.Unlock()
	return nil
}

// podTerminated implements ownerRef: replace lost replicas.
func (d *Deployment) podTerminated(p *Pod, _ PodPhase) {
	d.mu.Lock()
	owned := d.pods[p.Name()] == p
	if owned {
		delete(d.pods, p.Name())
	}
	need := owned && !d.stopped && len(d.pods) < d.replicas
	d.mu.Unlock()
	if !need || !d.cluster.ctrl.running() {
		return
	}
	go func() {
		d.cluster.clk.Sleep(d.cluster.jitter(d.cluster.timing.ControllerReact))
		d.mu.Lock()
		stillNeed := !d.stopped && len(d.pods) < d.replicas
		d.mu.Unlock()
		if stillNeed {
			_ = d.createReplica() // cluster shutdown is the only failure
		}
	}()
}

// ---------------------------------------------------------------------
// StatefulSet: replicas with stable identities name-0..name-N-1 (DLaaS
// learners, so a restarted learner keeps its ordinal and can rejoin
// distributed training).

// StatefulSet reconciles ordinal-named replicas.
type StatefulSet struct {
	cluster  *Cluster
	name     string
	template PodSpec

	mu       sync.Mutex
	replicas int
	pods     map[int]*Pod
	stopped  bool
}

var _ ownerRef = (*StatefulSet)(nil)

// CreateStatefulSet starts a stateful set with stable pod names
// "<name>-<ordinal>".
func (c *Cluster) CreateStatefulSet(name string, replicas int, template PodSpec) (*StatefulSet, error) {
	s := &StatefulSet{
		cluster:  c,
		name:     name,
		template: template,
		replicas: replicas,
		pods:     make(map[int]*Pod),
	}
	for i := 0; i < replicas; i++ {
		if err := s.createOrdinal(i); err != nil {
			return nil, fmt.Errorf("statefulset %s: %w", name, err)
		}
	}
	c.reg.mu.Lock()
	c.reg.statefulSets[name] = s
	c.reg.mu.Unlock()
	return s, nil
}

// Name returns the set's name.
func (s *StatefulSet) Name() string { return s.name }

// PodName returns the stable name of ordinal i.
func (s *StatefulSet) PodName(i int) string { return fmt.Sprintf("%s-%d", s.name, i) }

// Pods returns the live replicas keyed by ordinal.
func (s *StatefulSet) Pods() map[int]*Pod {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*Pod, len(s.pods))
	for k, v := range s.pods {
		out[k] = v
	}
	return out
}

// Delete stops reconciliation and kills the replicas.
func (s *StatefulSet) Delete() {
	s.mu.Lock()
	s.stopped = true
	pods := make([]*Pod, 0, len(s.pods))
	for _, p := range s.pods {
		pods = append(pods, p)
	}
	sortPodsByName(pods)
	s.pods = map[int]*Pod{}
	s.mu.Unlock()
	for _, p := range pods {
		p.kill(killDelete)
	}
}

func (s *StatefulSet) createOrdinal(i int) error {
	spec := s.template.clone()
	spec.Name = s.PodName(i)
	if spec.Labels == nil {
		spec.Labels = map[string]string{}
	}
	spec.Labels["ordinal"] = fmt.Sprintf("%d", i)
	p, err := s.cluster.createPodOwned(spec, s)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		p.kill(killDelete)
		return nil
	}
	s.pods[i] = p
	s.mu.Unlock()
	return nil
}

// podTerminated implements ownerRef: recreate the same ordinal.
func (s *StatefulSet) podTerminated(p *Pod, _ PodPhase) {
	s.mu.Lock()
	ordinal := -1
	for i, cur := range s.pods {
		if cur == p {
			ordinal = i
			delete(s.pods, i)
			break
		}
	}
	need := ordinal >= 0 && !s.stopped && ordinal < s.replicas
	s.mu.Unlock()
	if !need || !s.cluster.ctrl.running() {
		return
	}
	go func() {
		s.cluster.clk.Sleep(s.cluster.jitter(s.cluster.timing.ControllerReact))
		s.mu.Lock()
		stillNeed := !s.stopped
		s.mu.Unlock()
		if stillNeed {
			_ = s.createOrdinal(ordinal)
		}
	}()
}

// ---------------------------------------------------------------------
// Job: run a task to completion, restarting on failure up to a backoff
// limit. The DLaaS Guardian runs as a Job — "tasks that K8S guarantees
// to reliably run to completion".

// Job reconciles a run-to-completion pod.
type Job struct {
	cluster      *Cluster
	name         string
	template     PodSpec
	backoffLimit int

	mu        sync.Mutex
	attempts  int
	active    *Pod
	succeeded bool
	failed    bool
	stopped   bool
	done      chan struct{}
}

var _ ownerRef = (*Job)(nil)

// CreateJob starts a job. The pod is retried on failure up to
// backoffLimit additional attempts; exhausting them marks the job failed.
func (c *Cluster) CreateJob(name string, backoffLimit int, template PodSpec) (*Job, error) {
	j := &Job{
		cluster:      c,
		name:         name,
		template:     template,
		backoffLimit: backoffLimit,
		done:         make(chan struct{}),
	}
	if err := j.createAttempt(); err != nil {
		return nil, fmt.Errorf("job %s: %w", name, err)
	}
	c.reg.mu.Lock()
	c.reg.jobs[name] = j
	c.reg.mu.Unlock()
	return j, nil
}

// Name returns the job's name.
func (j *Job) Name() string { return j.name }

// ActivePodName returns the name of the current attempt's pod ("" when
// finished).
func (j *Job) ActivePodName() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return ""
	}
	return j.active.Name()
}

// Done is closed when the job succeeds or permanently fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status reports the job outcome and attempt count.
func (j *Job) Status() (succeeded, failed bool, attempts int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.succeeded, j.failed, j.attempts
}

// Delete stops the job and kills its active pod.
func (j *Job) Delete() {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	p := j.active
	j.active = nil
	finished := j.succeeded || j.failed
	if !finished {
		close(j.done)
	}
	j.mu.Unlock()
	if p != nil {
		p.kill(killDelete)
	}
}

func (j *Job) createAttempt() error {
	j.mu.Lock()
	attempt := j.attempts
	j.attempts++
	j.mu.Unlock()

	spec := j.template.clone()
	spec.Name = fmt.Sprintf("%s-a%d", j.name, attempt)
	if spec.RestartPolicy == 0 {
		spec.RestartPolicy = RestartNever
	}
	p, err := j.cluster.createPodOwned(spec, j)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		p.kill(killDelete)
		return nil
	}
	j.active = p
	j.mu.Unlock()
	return nil
}

// podTerminated implements ownerRef: retry failures, finish on success.
func (j *Job) podTerminated(p *Pod, phase PodPhase) {
	j.mu.Lock()
	if j.active != p || j.stopped {
		j.mu.Unlock()
		return
	}
	j.active = nil
	if phase == PodSucceeded {
		j.succeeded = true
		close(j.done)
		j.mu.Unlock()
		return
	}
	if j.attempts > j.backoffLimit {
		j.failed = true
		close(j.done)
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if !j.cluster.ctrl.running() {
		return
	}
	go func() {
		j.cluster.clk.Sleep(j.cluster.jitter(j.cluster.timing.ControllerReact))
		j.mu.Lock()
		stopped := j.stopped
		j.mu.Unlock()
		if !stopped {
			_ = j.createAttempt()
		}
	}()
}

// ---------------------------------------------------------------------
// NetworkPolicy: label-selected ingress restrictions (DLaaS isolates
// learner pods from platform services and from other tenants).

// NetworkPolicy restricts which pods may connect to the selected pods.
type NetworkPolicy struct {
	// Name identifies the policy.
	Name string
	// AppliesTo selects the protected pods by label.
	AppliesTo map[string]string
	// AllowFrom lists label selectors of permitted clients. A
	// connection is allowed if any selector matches the client.
	AllowFrom []map[string]string
}

// ApplyNetworkPolicy installs or replaces a policy.
func (c *Cluster) ApplyNetworkPolicy(p NetworkPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := p
	c.policies[p.Name] = &cp
}

// RemoveNetworkPolicy uninstalls a policy.
func (c *Cluster) RemoveNetworkPolicy(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.policies, name)
}

// CanConnect evaluates whether pod from may open a connection to pod to
// under the installed policies: if no policy selects the target, the
// connection is allowed (Kubernetes default-allow); otherwise at least
// one selecting policy must allow the client.
func (c *Cluster) CanConnect(fromPod, toPod string) bool {
	c.mu.Lock()
	from := c.pods[fromPod]
	to := c.pods[toPod]
	policies := make([]*NetworkPolicy, 0, len(c.policies))
	for _, p := range c.policies {
		policies = append(policies, p)
	}
	sortPolicies(policies)
	c.mu.Unlock()
	if from == nil || to == nil {
		return false
	}
	selected := false
	for _, p := range policies {
		if !labelsMatch(to.Spec.Labels, p.AppliesTo) {
			continue
		}
		selected = true
		for _, allow := range p.AllowFrom {
			if labelsMatch(from.Spec.Labels, allow) {
				return true
			}
		}
	}
	return !selected
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sortPolicies orders policies by name so connection checks evaluate
// them in one stable order regardless of map iteration.
func sortPolicies(ps []*NetworkPolicy) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Name < ps[j-1].Name; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
