package kube

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// Gang scheduling errors.
var (
	// ErrBadGang indicates an invalid gang specification.
	ErrBadGang = errors.New("kube: invalid gang spec")
	// ErrGangUnsatisfiable indicates the gang demands more GPUs than the
	// cluster could provide even with every node healthy and empty —
	// queueing it would wait forever. Callers should fail fast with a
	// diagnosable reason instead.
	ErrGangUnsatisfiable = errors.New("kube: gang demand exceeds cluster capacity")
)

// GangState is the lifecycle state of a pod group.
type GangState int

// Gang lifecycle states.
const (
	// GangPending: queued, waiting for capacity.
	GangPending GangState = iota + 1
	// GangAdmitted: every member has a GPU reservation; pods may bind.
	GangAdmitted
	// GangPreempted: evicted by a higher-priority gang; the owner must
	// cancel and resubmit.
	GangPreempted
	// GangReleased: cancelled (or completed) and its reservation returned.
	GangReleased
	// GangEvicting: an eviction intent has been posted. The gang keeps
	// its reservation and its pods keep running while the owner
	// checkpoints; AckEviction (or the grace deadline) completes the
	// eviction and the gang becomes GangPreempted.
	GangEvicting
)

// String implements fmt.Stringer.
func (s GangState) String() string {
	switch s {
	case GangPending:
		return "Pending"
	case GangAdmitted:
		return "Admitted"
	case GangPreempted:
		return "Preempted"
	case GangReleased:
		return "Released"
	case GangEvicting:
		return "Evicting"
	default:
		return fmt.Sprintf("gang(%d)", int(s))
	}
}

// Eviction intent reasons.
const (
	// EvictReasonPreemption marks an eviction in favor of a
	// higher-priority gang.
	EvictReasonPreemption = "preemption"
	// EvictReasonDrain marks an eviction caused by a node drain.
	EvictReasonDrain = "drain"
)

// EvictionIntent is one posted graceful-eviction handshake: the
// scheduler wants the gang's capacity and gives the owner until
// Deadline to checkpoint and ack before the member pods are killed.
type EvictionIntent struct {
	// Reason is EvictReasonPreemption or EvictReasonDrain.
	Reason string
	// PostedAt is when the scheduler posted the intent.
	PostedAt time.Time
	// Deadline is when a non-acking gang is force-evicted, so a wedged
	// owner cannot block a higher-priority gang indefinitely.
	Deadline time.Time
}

// GangSpec describes a pod group that must be placed atomically: all
// members get capacity, or none do (the paper's "either the whole job is
// provisioned with the requisite resources or none").
type GangSpec struct {
	// Name identifies the gang; member pods reference it via PodSpec.Gang.
	Name string
	// Tenant is the owning tenant (preemption is tenant-aware).
	Tenant string
	// Priority orders admission; higher preempts lower (when enabled).
	Priority int
	// Members is the number of pods in the gang.
	Members int
	// GPUsPerMember is each member pod's GPU demand.
	GPUsPerMember int
	// GPUType optionally constrains the nodes' GPU type.
	GPUType string
	// Trace optionally parents the scheduler's gang-admission span
	// (queue wait, backfill/preemption decisions) into the owner's
	// trace. Zero disables.
	Trace trace.SpanContext
}

// TotalGPUs is the gang's aggregate demand.
func (s GangSpec) TotalGPUs() int { return s.Members * s.GPUsPerMember }

// Gang is a live pod group tracked by the scheduler.
type Gang struct {
	// Spec is the submitted specification (read-only after submit).
	Spec GangSpec
	seq  uint64 // FIFO tiebreak within a priority level

	mu          sync.Mutex
	state       GangState
	reserved    map[*Node]int // GPUs reserved per node (bound + idle)
	idle        map[*Node]int // reserved GPUs not yet bound to a pod
	lost        int           // members whose reservation died with a node
	backfilled  bool          // admitted past a waiting head (counts against the backfill budget)
	submittedAt time.Time
	admittedAt  time.Time
	admittedCh  chan struct{}
	evictedCh   chan struct{}
	evicted     bool
	intent      *EvictionIntent
	noticeCh    chan struct{} // closed when an eviction intent is posted
	graceTimer  clock.Timer   // deadline backstop; stopped on early completion
	span        *trace.Span   // queue-wait span (nil when tracing is off)
}

// Name returns the gang's name.
func (g *Gang) Name() string { return g.Spec.Name }

// State returns the gang's current lifecycle state.
func (g *Gang) State() GangState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// Admitted is closed when every member has a reservation.
func (g *Gang) Admitted() <-chan struct{} { return g.admittedCh }

// Evicted is closed when the gang is preempted or released.
func (g *Gang) Evicted() <-chan struct{} { return g.evictedCh }

// EvictionNotice is closed when the scheduler posts an eviction intent
// for the gang — the owner's cue to checkpoint and AckEviction before
// the grace deadline.
func (g *Gang) EvictionNotice() <-chan struct{} { return g.noticeCh }

// EvictionIntent returns the posted intent, if any. It stays readable
// after the eviction completes (the owner reads the reason while
// handling the resulting preemption).
func (g *Gang) EvictionIntent() (EvictionIntent, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.intent == nil {
		return EvictionIntent{}, false
	}
	return *g.intent, true
}

// Degraded reports whether an admitted gang lost part of its reservation
// to a node failure and is waiting for repair capacity.
func (g *Gang) Degraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state == GangAdmitted && g.lost > 0
}

// PlacementLatency is the queue wait from submission to admission (zero
// while pending).
func (g *Gang) PlacementLatency() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.admittedAt.IsZero() {
		return 0
	}
	return g.admittedAt.Sub(g.submittedAt)
}

// NodeReservations returns reserved GPUs keyed by node name.
func (g *Gang) NodeReservations() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int, len(g.reserved))
	for n, k := range g.reserved {
		if k > 0 {
			out[n.Spec.Name] = k
		}
	}
	return out
}

// markEvicted closes the eviction channel exactly once.
func (g *Gang) markEvicted() {
	if !g.evicted {
		g.evicted = true
		close(g.evictedCh)
	}
}

// gangScheduler is the cluster's placement authority. Every GPU
// *decrement* — per-pod placement, gang reservation, repair — happens
// under mu, so a gang admission can plan across nodes and commit without
// another scheduler stealing the capacity in between. Increments
// (releases) only need the node lock; a racing plan can at worst miss
// fresh capacity, and the release's reschedule kick retries.
//
// Lock order: sched.mu > Gang.mu > Cluster.mu / Node.mu / Pod locks
// (evictLocked and repairLocked hold Gang.mu while listing pods or nodes
// via Cluster.mu; nothing may take Gang.mu while holding Cluster.mu).
type gangScheduler struct {
	c          *Cluster
	preemption bool
	backfill   bool
	grace      time.Duration // > 0 enables the graceful-eviction protocol

	mu       sync.Mutex
	gangs    map[string]*Gang
	queue    gangQueue
	inflight map[*Node]int // GPUs of evicted gangs still held by dying pods
	seq      uint64
}

func newGangScheduler(c *Cluster, cfg Config) *gangScheduler {
	return &gangScheduler{
		c:          c,
		preemption: !cfg.DisablePreemption,
		backfill:   !cfg.DisableBackfill,
		grace:      cfg.EvictionGracePeriod,
		gangs:      make(map[string]*Gang),
		inflight:   make(map[*Node]int),
	}
}

// SubmitGang queues a pod group for atomic admission. It is idempotent:
// resubmitting a live (pending, admitted, or preempted) gang returns the
// existing handle, so a restarted Guardian can recover its reservation
// by name. Admission may happen synchronously when capacity is free.
func (c *Cluster) SubmitGang(spec GangSpec) (*Gang, error) {
	if spec.Name == "" || spec.Members < 1 || spec.GPUsPerMember < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadGang, spec)
	}
	c.mu.Lock()
	stopped := c.stopped
	total, largestNode := 0, 0
	for _, n := range c.nodes {
		if spec.GPUType != "" && n.Spec.GPUType != spec.GPUType {
			continue
		}
		total += n.Spec.GPUs
		if n.Spec.GPUs > largestNode {
			largestNode = n.Spec.GPUs
		}
	}
	c.mu.Unlock()
	if stopped {
		return nil, ErrStopped
	}
	if spec.TotalGPUs() > total || spec.GPUsPerMember > largestNode {
		return nil, fmt.Errorf("%w: %d members x %d GPUs (type %q) on %d matching GPUs (largest node %d)",
			ErrGangUnsatisfiable, spec.Members, spec.GPUsPerMember, spec.GPUType, total, largestNode)
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gangs[spec.Name]; ok {
		return g, nil
	}
	s.seq++
	g := &Gang{
		Spec:        spec,
		seq:         s.seq,
		state:       GangPending,
		reserved:    make(map[*Node]int),
		idle:        make(map[*Node]int),
		submittedAt: c.clk.Now(),
		admittedCh:  make(chan struct{}),
		evictedCh:   make(chan struct{}),
		noticeCh:    make(chan struct{}),
	}
	g.span = c.trace.StartSpan(spec.Trace, "gang-wait")
	g.span.SetPhase(trace.PhaseQueue)
	s.gangs[spec.Name] = g
	s.queue.push(g)
	s.rescheduleLocked()
	return g, nil
}

// GangByName returns the live gang (pending, admitted, or preempted), or
// nil.
func (c *Cluster) GangByName(name string) *Gang {
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gangs[name]
}

// Gangs returns all live gangs sorted by name.
func (c *Cluster) Gangs() []*Gang {
	s := c.sched
	s.mu.Lock()
	out := make([]*Gang, 0, len(s.gangs))
	for _, g := range s.gangs {
		out = append(out, g)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// CancelGang releases the gang's reservation and kills its member pods.
// It is idempotent and is the Guardian's rollback hook: a partially
// deployed job's gang disappears atomically with its pods.
func (c *Cluster) CancelGang(name string) {
	s := c.sched
	s.mu.Lock()
	g := s.gangs[name]
	var victims []*Pod
	if g != nil {
		if g.span != nil && !g.span.Ended() {
			g.span.SetAttr("outcome", "cancelled")
			g.span.End()
		}
		victims = s.evictLocked(g, GangReleased)
		delete(s.gangs, name)
		s.rescheduleLocked()
	}
	s.mu.Unlock()
	for _, p := range victims {
		p.kill(killDelete)
	}
}

// AckEviction completes a gang's posted eviction intent early: the
// owner has checkpointed and the scheduler may take the capacity now
// instead of waiting for the grace deadline. It is a no-op unless the
// gang is currently evicting.
func (c *Cluster) AckEviction(name string) {
	s := c.sched
	s.mu.Lock()
	g := s.gangs[name]
	s.mu.Unlock()
	if g != nil {
		s.completeEviction(g)
	}
}

// postIntentLocked opens the two-phase eviction for an admitted gang:
// the gang keeps its reservation and its pods keep running while the
// owner checkpoints; AckEviction or the grace-deadline timer finishes
// the job. Caller holds s.mu.
func (s *gangScheduler) postIntentLocked(g *Gang, reason string) {
	g.mu.Lock()
	if g.state != GangAdmitted {
		g.mu.Unlock()
		return
	}
	now := s.c.clk.Now()
	g.state = GangEvicting
	g.intent = &EvictionIntent{Reason: reason, PostedAt: now, Deadline: now.Add(s.grace)}
	close(g.noticeCh)
	g.span.Event("eviction-intent:" + reason)
	g.mu.Unlock()
	// The deadline backstop: a wedged owner that never acks cannot hold
	// the capacity past the grace period. The timer handle is installed
	// before s.mu is released, so any completion path (which needs s.mu)
	// finds and stops it.
	t := s.c.clk.AfterFunc(s.grace, func() { s.completeEviction(g) })
	g.mu.Lock()
	g.graceTimer = t
	g.mu.Unlock()
}

// completeEviction finishes a posted intent — the immediate-eviction
// endgame: the reservation is released, the member pods die, and the
// gang becomes GangPreempted for its owner to redeploy. Idempotent: the
// ack path and the deadline timer may race, and a gang cancelled during
// its grace window is simply gone.
func (s *gangScheduler) completeEviction(g *Gang) {
	s.mu.Lock()
	if g.State() != GangEvicting {
		s.mu.Unlock()
		return
	}
	pods := s.evictLocked(g, GangPreempted)
	s.rescheduleLocked()
	s.mu.Unlock()
	for _, p := range pods {
		p.kill(killPreempted)
	}
}

// drainGangs gracefully evicts every gang holding reservation on n,
// in reverse-priority order (lowest priority first, newest first within
// a priority) — the node-drain path through the gang scheduler, so
// drain and preemption share one eviction protocol and the holdings
// ledger stays consistent. Without a grace period the evictions
// complete immediately, exactly like an immediate preemption.
func (s *gangScheduler) drainGangs(n *Node) {
	if n == nil {
		return
	}
	s.mu.Lock()
	var resident []*Gang
	for _, g := range s.gangs {
		g.mu.Lock()
		held := g.reserved[n]
		st := g.state
		g.mu.Unlock()
		if held > 0 && st == GangAdmitted {
			resident = append(resident, g)
		}
	}
	sort.Slice(resident, func(i, j int) bool {
		a, b := resident[i], resident[j]
		if a.Spec.Priority != b.Spec.Priority {
			return a.Spec.Priority < b.Spec.Priority
		}
		return a.seq > b.seq
	})
	var victims []*Pod
	for _, g := range resident {
		if s.grace > 0 {
			s.postIntentLocked(g, EvictReasonDrain)
			continue
		}
		// Immediate mode: record the intent (zero grace) so the owner
		// still learns why it was evicted, then complete on the spot.
		g.mu.Lock()
		if g.intent == nil {
			now := s.c.clk.Now()
			g.intent = &EvictionIntent{Reason: EvictReasonDrain, PostedAt: now, Deadline: now}
			close(g.noticeCh)
		}
		g.mu.Unlock()
		victims = append(victims, s.evictLocked(g, GangPreempted)...)
	}
	s.rescheduleLocked()
	s.mu.Unlock()
	for _, p := range victims {
		p.kill(killPreempted)
	}
}

// evictLocked takes the gang out of service: pending gangs leave the
// queue; admitted (and evicting) gangs return idle reservation to their
// nodes and move the bound remainder to the inflight ledger (it returns
// to the nodes as the member pods die). The gang's member pods are
// returned for the caller to kill outside sched.mu-critical work.
func (s *gangScheduler) evictLocked(g *Gang, to GangState) []*Pod {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.state {
	case GangReleased:
		return nil
	case GangPreempted:
		// Reservation already gone; finalize the state and sweep up any
		// member pods recreated (and left pending) since the eviction.
		g.state = to
		return s.memberPodsLocked(g.Spec.Name)
	case GangPending:
		s.queue.remove(g)
		g.state = to
		g.markEvicted()
		return nil
	}
	// Admitted or evicting: give idle capacity back now, track bound
	// capacity as in-flight until the pods release it.
	for n, k := range g.idle {
		if k <= 0 {
			continue
		}
		n.mu.Lock()
		if !n.down {
			n.freeGPUs += k
			if n.freeGPUs > n.Spec.GPUs {
				n.freeGPUs = n.Spec.GPUs
			}
		}
		n.mu.Unlock()
	}
	for n, r := range g.reserved {
		bound := r - g.idle[n]
		if bound > 0 && !n.Down() {
			s.inflight[n] += bound
		}
	}
	g.idle = make(map[*Node]int)
	g.reserved = make(map[*Node]int)
	g.lost = 0
	g.state = to
	// An early completion (ack) or cancellation retires the grace
	// deadline; leaving it armed would park a stale wakeup on the clock.
	if g.graceTimer != nil {
		g.graceTimer.Stop()
		g.graceTimer = nil
	}
	g.markEvicted()
	return s.memberPodsLocked(g.Spec.Name)
}

// memberPodsLocked lists the gang's pods (lock order: sched.mu > c.mu).
func (s *gangScheduler) memberPodsLocked(gang string) []*Pod {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	var out []*Pod
	for _, p := range s.c.pods {
		if p.Spec.Gang == gang {
			out = append(out, p)
		}
	}
	sortPodsByName(out)
	return out
}

// placePod reserves capacity for one pod. Gang members bind to their
// gang's idle reservation; everything else goes through the per-pod
// policy placement. Returns nil when nothing fits (the pod keeps
// waiting).
func (s *gangScheduler) placePod(spec PodSpec) *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.Gang != "" {
		return s.placeGangPodLocked(spec)
	}
	return s.placeSingleLocked(spec)
}

// placeGangPodLocked binds a member pod to its gang's reservation.
func (s *gangScheduler) placeGangPodLocked(spec PodSpec) *Node {
	g := s.gangs[spec.Gang]
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state != GangAdmitted {
		return nil
	}
	// Deterministic choice: lowest node name with enough idle reservation.
	var chosen *Node
	for n, k := range g.idle {
		if k < spec.GPUs || n.Down() || n.Cordoned() {
			continue
		}
		if chosen == nil || n.Spec.Name < chosen.Spec.Name {
			chosen = n
		}
	}
	if chosen == nil {
		return nil
	}
	g.idle[chosen] -= spec.GPUs
	return chosen
}

// placeSingleLocked is the per-pod path: first-fit bin-pack or spread,
// exactly the seed scheduler but serialized under sched.mu so it cannot
// race a gang commit.
func (s *gangScheduler) placeSingleLocked(spec PodSpec) *Node {
	fits := func(n *Node) bool {
		return !n.down && !n.cordoned &&
			n.freeGPUs >= spec.GPUs &&
			(spec.GPUType == "" || spec.GPUType == n.Spec.GPUType)
	}
	var chosen *Node
	switch s.c.policy {
	case PolicySpread:
		best := -1
		for _, n := range s.c.Nodes() {
			n.mu.Lock()
			if fits(n) && n.freeGPUs > best {
				best = n.freeGPUs
				chosen = n
			}
			n.mu.Unlock()
		}
	default: // PolicyBinPack
		for _, n := range s.c.Nodes() {
			n.mu.Lock()
			ok := fits(n)
			n.mu.Unlock()
			if ok {
				chosen = n
				break
			}
		}
	}
	if chosen == nil {
		return nil
	}
	chosen.mu.Lock()
	defer chosen.mu.Unlock()
	if !fits(chosen) {
		return nil
	}
	chosen.freeGPUs -= spec.GPUs
	return chosen
}

// podReleased returns a finished pod's GPUs: to its gang's idle pool when
// the reservation is still live, otherwise to the node. Every release is
// a capacity event, so the queue is rescheduled.
func (s *gangScheduler) podReleased(n *Node, spec PodSpec) {
	if n == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	toNode := spec.GPUs
	if spec.Gang != "" {
		if g := s.gangs[spec.Gang]; g != nil {
			g.mu.Lock()
			// The reservation may be gone (gang evicted, or the node
			// crashed and zeroed it); only then do the GPUs bypass the
			// gang and go straight back to the node. A gang mid-grace
			// (Evicting) still owns its reservation.
			if (g.state == GangAdmitted || g.state == GangEvicting) && g.idle[n]+spec.GPUs <= g.reserved[n] {
				g.idle[n] += spec.GPUs
				toNode = 0
			}
			g.mu.Unlock()
		}
	}
	if toNode > 0 {
		n.mu.Lock()
		if !n.down {
			n.freeGPUs += toNode
			if n.freeGPUs > n.Spec.GPUs {
				n.freeGPUs = n.Spec.GPUs
			}
		}
		n.mu.Unlock()
		// Only the dying pods of evicted gangs were credited to the
		// inflight ledger; a plain pod's release must not drain it, or
		// the preemption projection undercounts capacity already on its
		// way and over-preempts.
		if spec.Gang != "" {
			if f := s.inflight[n]; f > 0 {
				if toNode >= f {
					delete(s.inflight, n)
				} else {
					s.inflight[n] = f - toNode
				}
			}
		}
	}
	s.rescheduleLocked()
}

// nodeDown withdraws a crashed node from every ledger: gang reservations
// on it are lost (the affected gangs become degraded and queue repairs),
// and its in-flight returns will never arrive.
func (s *gangScheduler) nodeDown(dn *Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, dn)
	for _, g := range s.gangs {
		g.mu.Lock()
		if r := g.reserved[dn]; r > 0 {
			if size := g.Spec.GPUsPerMember; size > 0 {
				g.lost += r / size
			}
			delete(g.reserved, dn)
			delete(g.idle, dn)
		}
		g.mu.Unlock()
	}
	s.rescheduleLocked()
}

// kick re-runs scheduling after an external capacity event (node
// restart, uncordon, drain).
func (s *gangScheduler) kick() {
	s.mu.Lock()
	s.rescheduleLocked()
	s.mu.Unlock()
}

// rescheduleLocked is the scheduling pass: repair degraded gangs, admit
// from the head of the priority queue, then preempt and backfill for
// whatever still waits.
func (s *gangScheduler) rescheduleLocked() {
	s.repairLocked()
	for {
		head := s.queue.head()
		if head == nil {
			return
		}
		if s.admitLocked(head, s.planLocked(head.Spec, nil), false) {
			continue
		}
		break
	}
	head := s.queue.head()
	if s.preemption {
		s.preemptForLocked(head)
	}
	if s.backfill {
		limit := s.backfillLimit(head)
		for i := 1; i < s.queue.len(); {
			g := s.queue.at(i)
			if s.admitLocked(g, s.planLocked(g.Spec, limit), true) {
				// Removal shifted the slice (same index is the next gang),
				// and the admission consumed backfill budget: rebuild the
				// cap so one pass cannot overshoot it.
				limit = s.backfillLimit(head)
				continue
			}
			i++
		}
	}
}

// admitLocked commits a placement plan: node capacity moves into the
// gang's reservation and the gang leaves the queue. A nil plan admits
// nothing. viaBackfill marks gangs that jumped a waiting head, so their
// holdings count against the backfill budget until they release.
func (s *gangScheduler) admitLocked(g *Gang, plan map[*Node]int, viaBackfill bool) bool {
	if plan == nil {
		return false
	}
	g.mu.Lock()
	for n, k := range plan {
		n.mu.Lock()
		n.freeGPUs -= k
		n.mu.Unlock()
		g.reserved[n] += k
		g.idle[n] += k
	}
	g.backfilled = viaBackfill
	g.state = GangAdmitted
	g.admittedAt = s.c.clk.Now()
	close(g.admittedCh)
	if g.span != nil {
		g.span.SetAttr("backfill", fmt.Sprintf("%v", viaBackfill))
		g.span.End()
	}
	g.mu.Unlock()
	s.queue.remove(g)
	return true
}

// planLocked bin-packs (or spreads) the gang's members over schedulable
// nodes, returning GPUs-per-node or nil when the gang does not fit as a
// whole. limit optionally caps the usable free GPUs per node (the
// backfill guard).
func (s *gangScheduler) planLocked(spec GangSpec, limit func(n *Node, free int) int) map[*Node]int {
	size := spec.GPUsPerMember
	if size == 0 {
		// GPU-less gangs occupy no capacity: admit immediately.
		return map[*Node]int{}
	}
	type cand struct {
		n    *Node
		free int
	}
	var cands []cand
	for _, n := range s.c.Nodes() {
		n.mu.Lock()
		ok := !n.down && !n.cordoned && (spec.GPUType == "" || n.Spec.GPUType == spec.GPUType)
		free := n.freeGPUs
		n.mu.Unlock()
		if !ok {
			continue
		}
		if limit != nil {
			free = limit(n, free)
		}
		if free >= size {
			cands = append(cands, cand{n, free})
		}
	}
	plan := make(map[*Node]int)
	remaining := spec.Members
	switch s.c.policy {
	case PolicySpread:
		for remaining > 0 {
			bi := -1
			for i := range cands {
				if cands[i].free >= size && (bi < 0 || cands[i].free > cands[bi].free) {
					bi = i
				}
			}
			if bi < 0 {
				return nil
			}
			cands[bi].free -= size
			plan[cands[bi].n] += size
			remaining--
		}
	default: // PolicyBinPack: fill nodes in name order
		for i := range cands {
			k := cands[i].free / size
			if k > remaining {
				k = remaining
			}
			if k > 0 {
				plan[cands[i].n] += k * size
				remaining -= k
			}
			if remaining == 0 {
				break
			}
		}
		if remaining > 0 {
			return nil
		}
	}
	return plan
}

// backfillLimit builds the per-node cap that lets a small gang slip past
// the waiting head without delaying it — now or ever. On nodes the head
// can use, two guards compose:
//
//   - free % (head's member size): only the current fragmentation
//     remainder is up for grabs, so the count of head members placeable
//     right now never shrinks.
//   - capacity % (head's member size), minus what backfilled gangs
//     already hold there: total backfill holdings never exceed the
//     remainder the head could not use even on a fully drained node.
//     Without this budget a continuous stream of small gangs can re-grab
//     each remainder the moment an earlier backfill releases it, and the
//     node oscillates below a full member slot forever — the backfill-
//     starvation scenario.
//
// On nodes the head cannot use (GPU type mismatch), everything is fair
// game.
func (s *gangScheduler) backfillLimit(head *Gang) func(n *Node, free int) int {
	if head == nil {
		return nil
	}
	hs := head.Spec.GPUsPerMember
	ht := head.Spec.GPUType
	if hs == 0 {
		return nil
	}
	held := make(map[*Node]int)
	for _, g := range s.gangs {
		g.mu.Lock()
		if g.state == GangAdmitted && g.backfilled {
			for n, r := range g.reserved {
				held[n] += r
			}
		}
		g.mu.Unlock()
	}
	return func(n *Node, free int) int {
		if ht != "" && n.Spec.GPUType != ht {
			return free
		}
		budget := n.Spec.GPUs%hs - held[n]
		if budget < 0 {
			budget = 0
		}
		if frag := free % hs; frag < budget {
			return frag
		}
		return budget
	}
}

// preemptForLocked evicts lower-priority gangs so the head of the queue
// will fit once their pods die. Victim order is tenant-aware: lowest
// priority first, then gangs of the tenant holding the most reserved
// GPUs, then the most recently admitted — so a tenant hogging the
// cluster pays before a modest one, and older work survives longer.
// Capacity already in flight (from earlier evictions) and reservations
// of gangs mid-grace both count toward the projection, so repeated
// passes never over-preempt. With a grace period configured, victims
// get an eviction intent (checkpoint-before-preempt) instead of an
// immediate kill.
func (s *gangScheduler) preemptForLocked(head *Gang) {
	if head == nil {
		return
	}
	hs := head.Spec.GPUsPerMember
	ht := head.Spec.GPUType
	if hs == 0 {
		return
	}
	// Projected usable capacity per node: free + in-flight returns.
	avail := make(map[*Node]int)
	for _, n := range s.c.Nodes() {
		n.mu.Lock()
		ok := !n.down && !n.cordoned && (ht == "" || n.Spec.GPUType == ht)
		free := n.freeGPUs
		n.mu.Unlock()
		if !ok {
			continue
		}
		avail[n] = free + s.inflight[n]
	}
	// Capacity already promised through the grace protocol counts too:
	// an evicting gang's reservation arrives at ack or deadline, so
	// reschedule passes during the grace window must not pick fresh
	// victims for the same shortfall.
	for _, g := range s.gangs {
		g.mu.Lock()
		if g.state == GangEvicting {
			for n, r := range g.reserved {
				if _, ok := avail[n]; ok {
					avail[n] += r
				}
			}
		}
		g.mu.Unlock()
	}
	placeable := 0
	for _, a := range avail {
		placeable += a / hs
	}
	if placeable >= head.Spec.Members {
		return // enough capacity is already free or on its way
	}
	// Candidate victims: strictly lower-priority admitted gangs.
	tenantHeld := make(map[string]int)
	var cands []*Gang
	for _, g := range s.gangs {
		g.mu.Lock()
		if g.state == GangAdmitted {
			held := 0
			for _, k := range g.reserved {
				held += k
			}
			tenantHeld[g.Spec.Tenant] += held
			if g.Spec.Priority < head.Spec.Priority {
				cands = append(cands, g)
			}
		}
		g.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Spec.Priority != b.Spec.Priority {
			return a.Spec.Priority < b.Spec.Priority
		}
		if tenantHeld[a.Spec.Tenant] != tenantHeld[b.Spec.Tenant] {
			return tenantHeld[a.Spec.Tenant] > tenantHeld[b.Spec.Tenant]
		}
		return a.seq > b.seq
	})
	var victims []*Gang
	for _, v := range cands {
		if placeable >= head.Spec.Members {
			break
		}
		victims = append(victims, v)
		v.mu.Lock()
		for n, r := range v.reserved {
			if _, ok := avail[n]; !ok {
				continue // node unusable for the head
			}
			placeable -= avail[n] / hs
			avail[n] += r
			placeable += avail[n] / hs
		}
		v.mu.Unlock()
	}
	if placeable < head.Spec.Members {
		return // preempting everything eligible still would not fit: don't
	}
	for _, v := range victims {
		if s.grace > 0 {
			// Two-phase: post the intent and let the owner checkpoint;
			// the capacity moves at ack or deadline.
			s.postIntentLocked(v, EvictReasonPreemption)
			continue
		}
		pods := s.evictLocked(v, GangPreempted)
		for _, p := range pods {
			p.kill(killPreempted)
		}
	}
	// The head admits via the reschedule kicks of the dying pods.
}

// repairLocked restores admitted gangs after topology changes: idle
// reservation stranded on cordoned nodes migrates to schedulable ones,
// and members lost to node crashes are re-reserved (all-or-nothing, like
// admission) as capacity allows. Higher-priority gangs repair first.
func (s *gangScheduler) repairLocked() {
	var admitted []*Gang
	for _, g := range s.gangs {
		if g.State() == GangAdmitted {
			admitted = append(admitted, g)
		}
	}
	sort.Slice(admitted, func(i, j int) bool { return less(admitted[i], admitted[j]) })
	for _, g := range admitted {
		size := g.Spec.GPUsPerMember
		if size == 0 {
			continue
		}
		g.mu.Lock()
		// Migrate idle reservation off unschedulable nodes.
		for n, k := range g.idle {
			if k < size || !(n.Down() || n.Cordoned()) {
				continue
			}
			members := k / size
			moveSpec := g.Spec
			moveSpec.Members = members
			plan := s.planLocked(moveSpec, nil)
			if plan == nil {
				continue
			}
			g.idle[n] -= members * size
			g.reserved[n] -= members * size
			n.mu.Lock()
			if !n.down {
				n.freeGPUs += members * size
			}
			n.mu.Unlock()
			for pn, pk := range plan {
				pn.mu.Lock()
				pn.freeGPUs -= pk
				pn.mu.Unlock()
				g.reserved[pn] += pk
				g.idle[pn] += pk
			}
		}
		// Re-reserve members lost to node failures.
		if g.lost > 0 {
			repairSpec := g.Spec
			repairSpec.Members = g.lost
			if plan := s.planLocked(repairSpec, nil); plan != nil {
				for pn, pk := range plan {
					pn.mu.Lock()
					pn.freeGPUs -= pk
					pn.mu.Unlock()
					g.reserved[pn] += pk
					g.idle[pn] += pk
				}
				g.lost = 0
			}
		}
		g.mu.Unlock()
	}
}

// PendingGangs returns the number of gangs waiting for admission.
func (c *Cluster) PendingGangs() int {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.sched.queue.len()
}
