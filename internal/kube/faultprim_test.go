package kube

import (
	"errors"
	"testing"
	"time"
)

func TestSetNodeSkewAndNodeClock(t *testing.T) {
	c, clk := newTestCluster(t)
	if err := c.SetNodeSkew("node-a", 45*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeSkew("ghost", time.Second); !errors.Is(err, ErrNoNode) {
		t.Fatalf("skewing unknown node: err = %v, want ErrNoNode", err)
	}
	base := clk.Now()
	if got := c.NodeClock("node-a").Now().Sub(base); got != 45*time.Second {
		t.Fatalf("node-a clock offset = %v, want 45s", got)
	}
	if got := c.NodeClock("node-b").Now(); !got.Equal(base) {
		t.Fatalf("unskewed node-b reads %v, want cluster time %v", got, base)
	}

	// A container process observes its node's skew through its ctx.
	readings := make(chan time.Duration, 1)
	spec := sleeperSpec("skew-probe", time.Hour, 0)
	run := spec.Containers[0].Run
	spec.Containers[0].Run = func(ctx *ContainerCtx) int {
		readings <- ctx.Clock().Now().Sub(ctx.Cluster().Clock().Now())
		return run(ctx)
	}
	if _, err := c.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "skew-probe", PodRunning, time.Minute)
	select {
	case off := <-readings:
		// The probe landed on node-a (binpack fills name order) and must
		// read its 45s skew; if placement ever changes, an unskewed 0
		// would still be a legal node-b reading, so pin the node.
		node := c.Pod("skew-probe").NodeName()
		want := time.Duration(0)
		if node == "node-a" {
			want = 45 * time.Second
		}
		if off != want {
			t.Fatalf("container on %s read skew %v, want %v", node, off, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe never reported")
	}

	// Healing: zero offset restores cluster time.
	if err := c.SetNodeSkew("node-a", 0); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeClock("node-a").Now(); !got.Equal(clk.Now()) {
		t.Fatal("healed node still skewed")
	}
}

func TestDeletePodAndSnapshotIsOneCut(t *testing.T) {
	c, clk := newTestCluster(t)
	labels := map[string]string{"app": "svc"}
	mk := func(name string) {
		spec := sleeperSpec(name, time.Hour, 0)
		spec.Labels = labels
		if _, err := c.CreatePod(spec); err != nil {
			t.Fatal(err)
		}
	}
	mk("svc-1")
	mk("svc-2")
	waitPhase(t, c, clk, "svc-1", PodRunning, time.Minute)
	waitPhase(t, c, clk, "svc-2", PodRunning, time.Minute)

	snap, err := c.DeletePodAndSnapshot("svc-1", labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d pods, want 2 (victim included)", len(snap))
	}
	names := map[string]bool{}
	for _, p := range snap {
		names[p.Name()] = true
	}
	if !names["svc-1"] || !names["svc-2"] {
		t.Fatalf("snapshot = %v", names)
	}
	// The victim was killed in the same cut.
	deadline := clk.Now().Add(time.Minute)
	for c.Pod("svc-1") != nil && clk.Now().Before(deadline) {
		clk.Sleep(20 * time.Millisecond)
	}
	if c.Pod("svc-1") != nil {
		t.Fatal("victim still registered")
	}

	if _, err := c.DeletePodAndSnapshot("ghost", labels); !errors.Is(err, ErrNoPod) {
		t.Fatalf("unknown victim: err = %v, want ErrNoPod", err)
	}
}
