package kube

// Regression: scale-down victim selection is by name (highest suffixes
// die), never by map iteration order — an arbitrary pick would make
// two replays of one chaos schedule kill different replicas.

import (
	"reflect"
	"testing"
	"time"
)

func TestScaleDownVictimsDeterministic(t *testing.T) {
	c, clk := newTestCluster(t)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "web"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "srv", StartDelay: 50 * time.Millisecond}},
	}
	d, err := c.CreateDeployment("web", 5, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "web", 5, 30*time.Second)

	before := d.PodNames()
	if len(before) != 5 {
		t.Fatalf("replicas = %v, want 5", before)
	}
	if err := d.Scale(2); err != nil {
		t.Fatal(err)
	}
	after := d.PodNames()
	// The two lowest-named replicas survive; the three highest die.
	want := before[:2]
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("survivors = %v, want lowest-named %v (before scale: %v)", after, want, before)
	}
}
