// Package kube is an in-process simulation of the Kubernetes control
// plane as DLaaS uses it: pods scheduled onto GPU nodes, Deployments that
// keep microservice replicas alive, Jobs that run a task to completion
// with restart-on-crash (the Guardian's atomicity anchor), StatefulSets
// with stable learner identities, persistent volume claims binding shared
// NFS volumes, network policies isolating tenants, and kubectl-style
// crash injection. Pod lifecycle timing (scheduling, image/volume
// binding, process start) is modeled on the virtual clock so the paper's
// Fig. 4 component-recovery measurements can be reproduced.
package kube

import (
	"fmt"
	"time"
)

// PodPhase is the pod lifecycle state.
type PodPhase int

// Pod phases, mirroring the Kubernetes states DLaaS observes.
const (
	PodPending PodPhase = iota + 1
	PodCreating
	PodRunning
	PodSucceeded
	PodFailed
)

// String implements fmt.Stringer.
func (p PodPhase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodCreating:
		return "ContainerCreating"
	case PodRunning:
		return "Running"
	case PodSucceeded:
		return "Succeeded"
	case PodFailed:
		return "Failed"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Terminal reports whether the phase is final.
func (p PodPhase) Terminal() bool { return p == PodSucceeded || p == PodFailed }

// RestartPolicy governs in-place container restarts by the kubelet.
type RestartPolicy int

// Restart policies.
const (
	// RestartAlways restarts containers regardless of exit code
	// (Deployments, StatefulSets).
	RestartAlways RestartPolicy = iota + 1
	// RestartOnFailure restarts only non-zero exits (Jobs).
	RestartOnFailure
	// RestartNever lets the pod terminate on first container exit.
	RestartNever
)

// String implements fmt.Stringer.
func (r RestartPolicy) String() string {
	switch r {
	case RestartAlways:
		return "Always"
	case RestartOnFailure:
		return "OnFailure"
	case RestartNever:
		return "Never"
	default:
		return fmt.Sprintf("restart(%d)", int(r))
	}
}

// ProcessFunc is a container's main process. It runs on its own
// goroutine; it should return its exit code, and must return promptly
// after ctx.Killed() is closed. A nil ProcessFunc models a server process
// that runs until killed.
type ProcessFunc func(ctx *ContainerCtx) int

// ContainerSpec describes one container in a pod.
type ContainerSpec struct {
	// Name identifies the container within its pod.
	Name string
	// Image names the container image. Images matter for start latency:
	// heavyweight DL framework images start slower than Go binaries.
	Image string
	// StartDelay is how long the process takes from container start to
	// readiness (image-dependent: TF/Caffe runtimes are slow to boot).
	StartDelay time.Duration
	// Run is the process body. Nil runs until killed.
	Run ProcessFunc
	// Liveness, when non-nil, is polled every LivenessInterval while
	// the process runs; a false result kills the process so the restart
	// policy can recover it. This is the kubelet-side failure detector
	// for hung (not crashed) processes, complementing the exit-file
	// detection the DLaaS controller performs.
	Liveness func() bool
	// LivenessInterval overrides the default 10s probe cadence.
	LivenessInterval time.Duration
}

// PodSpec is the template for a pod.
type PodSpec struct {
	// Name is the pod's base name (controllers append identity suffixes).
	Name string
	// Labels select pods for services and network policies.
	Labels map[string]string
	// Tenant is the owning tenant for isolation accounting.
	Tenant string
	// Containers run concurrently inside the pod.
	Containers []ContainerSpec
	// RestartPolicy governs kubelet in-place restarts.
	RestartPolicy RestartPolicy
	// GPUs requested (scheduler resource accounting).
	GPUs int
	// GPUType optionally constrains the node's GPU type.
	GPUType string
	// Gang, when set, binds the pod to the named pod group's atomic GPU
	// reservation (see Cluster.SubmitGang) instead of the per-pod
	// scheduler. The pod stays Pending until its gang is admitted.
	Gang string
	// Volumes are NFS volume names bound at pod start via PVCs. Binding
	// adds start latency.
	Volumes []string
	// BindsObjectStore adds the object-store credential/mount latency
	// observed on learner restarts ("binding to cloud object store and
	// persistent NFS volumes takes longer").
	BindsObjectStore bool
}

// clone deep-copies the spec so controllers can stamp out pods safely.
func (s PodSpec) clone() PodSpec {
	out := s
	out.Labels = make(map[string]string, len(s.Labels))
	for k, v := range s.Labels {
		out.Labels[k] = v
	}
	out.Containers = make([]ContainerSpec, len(s.Containers))
	copy(out.Containers, s.Containers)
	out.Volumes = make([]string, len(s.Volumes))
	copy(out.Volumes, s.Volumes)
	return out
}

// EventType tags watch events.
type EventType int

// Watch event kinds.
const (
	EventAdded EventType = iota + 1
	EventPhaseChanged
	EventDeleted
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventAdded:
		return "ADDED"
	case EventPhaseChanged:
		return "PHASE"
	case EventDeleted:
		return "DELETED"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is a pod watch notification.
type Event struct {
	Type  EventType
	Pod   string
	Phase PodPhase
	// Time is the virtual instant of the transition.
	Time time.Time
}

// NodeSpec describes a cluster worker machine.
type NodeSpec struct {
	// Name identifies the node.
	Name string
	// GPUs is the allocatable GPU count.
	GPUs int
	// GPUType is the installed accelerator model (e.g. "K80").
	GPUType string
}
