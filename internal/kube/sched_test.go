package kube

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

func newPolicyCluster(t *testing.T, policy SchedulingPolicy, nodes ...NodeSpec) (*Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	c := NewCluster(Config{Clock: clk, Scheduling: policy}, nodes...)
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

func gpuPod(name string, gpus int) PodSpec {
	return PodSpec{
		Name:          name,
		GPUs:          gpus,
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "c", StartDelay: 10 * time.Millisecond}},
	}
}

func TestBinPackFillsFirstNode(t *testing.T) {
	c, clk := newPolicyCluster(t, PolicyBinPack,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("bp-%d", i)
		if _, err := c.CreatePod(gpuPod(name, 1)); err != nil {
			t.Fatal(err)
		}
		waitPhase(t, c, clk, name, PodRunning, 30*time.Second)
	}
	// All four land on n1.
	for _, p := range c.Pods(nil) {
		if p.NodeName() != "n1" {
			t.Fatalf("pod %s on %s, want n1", p.Name(), p.NodeName())
		}
	}
}

func TestSpreadBalancesNodes(t *testing.T) {
	c, clk := newPolicyCluster(t, PolicySpread,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("sp-%d", i)
		if _, err := c.CreatePod(gpuPod(name, 1)); err != nil {
			t.Fatal(err)
		}
		waitPhase(t, c, clk, name, PodRunning, 30*time.Second)
	}
	for _, p := range c.Pods(nil) {
		counts[p.NodeName()]++
	}
	if counts["n1"] != 2 || counts["n2"] != 2 {
		t.Fatalf("spread placement = %v, want 2/2", counts)
	}
}

func TestSpreadLimitsNodeCrashBlastRadius(t *testing.T) {
	// The dependability rationale for spread: with 4 single-GPU pods on
	// 2 nodes, a node crash kills only half the pods under spread, but
	// all of them under binpack.
	for _, tc := range []struct {
		policy SchedulingPolicy
		want   int // pods surviving a crash of n1
	}{
		{PolicyBinPack, 0},
		{PolicySpread, 2},
	} {
		c, clk := newPolicyCluster(t, tc.policy,
			NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
			NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
		)
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p-%d", i)
			if _, err := c.CreatePod(gpuPod(name, 1)); err != nil {
				t.Fatal(err)
			}
			waitPhase(t, c, clk, name, PodRunning, 30*time.Second)
		}
		if err := c.CrashNode("n1"); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(time.Second)
		survivors := 0
		for _, p := range c.Pods(nil) {
			if p.Phase() == PodRunning {
				survivors++
			}
		}
		if survivors != tc.want {
			t.Fatalf("policy %v: survivors = %d, want %d", tc.policy, survivors, tc.want)
		}
	}
}

func TestLivenessProbeRestartsHungProcess(t *testing.T) {
	c, clk := newTestCluster(t)
	healthy := make(chan bool, 16)
	healthy <- true
	alive := true
	spec := PodSpec{
		Name:          "hung",
		RestartPolicy: RestartAlways,
		Containers: []ContainerSpec{{
			Name:             "srv",
			StartDelay:       50 * time.Millisecond,
			LivenessInterval: time.Second,
			Liveness: func() bool {
				select {
				case v := <-healthy:
					alive = v
				default:
				}
				return alive
			},
		}},
	}
	p, err := c.CreatePod(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "hung", PodRunning, 30*time.Second)

	// Healthy probes do not restart the container.
	clk.Sleep(5 * time.Second)
	if p.Restarts() != 0 {
		t.Fatalf("restarts = %d before hang", p.Restarts())
	}
	// Simulate a hang: the probe starts failing; the kubelet kills and
	// restarts the container (first restart immediate).
	healthy <- false
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) {
		if p.Restarts() >= 1 {
			// Recover the probe so the restarted container stays up.
			alive = true
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatal("hung container was never restarted by the liveness probe")
}
