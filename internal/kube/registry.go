package kube

import "sync"

// registry gives controllers name-based addressing, which is what lets a
// restarted Guardian find and roll back resources created by its crashed
// predecessor (it has no in-memory handles, only names journaled in etcd).
type registry struct {
	mu           sync.Mutex
	deployments  map[string]*Deployment
	statefulSets map[string]*StatefulSet
	jobs         map[string]*Job
}

func newRegistry() *registry {
	return &registry{
		deployments:  make(map[string]*Deployment),
		statefulSets: make(map[string]*StatefulSet),
		jobs:         make(map[string]*Job),
	}
}

// DeploymentByName returns the live deployment or nil.
func (c *Cluster) DeploymentByName(name string) *Deployment {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	return c.reg.deployments[name]
}

// StatefulSetByName returns the live stateful set or nil.
func (c *Cluster) StatefulSetByName(name string) *StatefulSet {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	return c.reg.statefulSets[name]
}

// JobByName returns the job (running or finished) or nil.
func (c *Cluster) JobByName(name string) *Job {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	return c.reg.jobs[name]
}

// DeleteDeployment removes the named deployment and its pods. It is a
// no-op if absent.
func (c *Cluster) DeleteDeployment(name string) {
	c.reg.mu.Lock()
	d := c.reg.deployments[name]
	delete(c.reg.deployments, name)
	c.reg.mu.Unlock()
	if d != nil {
		d.Delete()
	}
}

// DeleteStatefulSet removes the named stateful set and its pods. It is a
// no-op if absent.
func (c *Cluster) DeleteStatefulSet(name string) {
	c.reg.mu.Lock()
	s := c.reg.statefulSets[name]
	delete(c.reg.statefulSets, name)
	c.reg.mu.Unlock()
	if s != nil {
		s.Delete()
	}
}

// DeleteJob removes the named job and its active pod. It is a no-op if
// absent.
func (c *Cluster) DeleteJob(name string) {
	c.reg.mu.Lock()
	j := c.reg.jobs[name]
	delete(c.reg.jobs, name)
	c.reg.mu.Unlock()
	if j != nil {
		j.Delete()
	}
}
