package kube

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// killReason distinguishes why a pod is being terminated.
type killReason int

const (
	killDelete killReason = iota + 1
	killNodeFailure
	// killPreempted marks eviction by the gang scheduler in favor of a
	// higher-priority gang; like a node failure, the pod ends Failed.
	killPreempted
)

// exitKilled is the exit code of a killed container process (SIGKILL).
const exitKilled = 137

// Pod is a running (or pending/terminated) pod instance.
type Pod struct {
	cluster *Cluster
	Spec    PodSpec
	owner   ownerRef

	mu         sync.Mutex
	phase      PodPhase
	node       *Node
	containers map[string]*containerState
	restarts   int
	killed     bool
	killWhy    killReason
	killCh     chan struct{}
	doneCh     chan struct{}
	startedAt  time.Time
}

// containerState tracks one container's current incarnation.
type containerState struct {
	spec     ContainerSpec
	mu       sync.Mutex
	procKill chan struct{} // closes to kill the current process
	running  bool
	exits    int
	lastExit int
}

// ownerRef links a pod to the controller that manages it.
type ownerRef interface {
	// podTerminated is invoked exactly once when the pod reaches a
	// terminal phase or is deleted. phase is the final phase.
	podTerminated(p *Pod, phase PodPhase)
}

func newPod(c *Cluster, spec PodSpec, owner ownerRef) *Pod {
	p := &Pod{
		cluster:    c,
		Spec:       spec,
		owner:      owner,
		phase:      PodPending,
		containers: make(map[string]*containerState, len(spec.Containers)),
		killCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	for _, cs := range spec.Containers {
		p.containers[cs.Name] = &containerState{spec: cs}
	}
	return p
}

// Name returns the pod's unique name.
func (p *Pod) Name() string { return p.Spec.Name }

// Phase returns the pod's current phase.
func (p *Pod) Phase() PodPhase {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phase
}

// NodeName returns the node the pod is bound to ("" while pending).
func (p *Pod) NodeName() string { return p.nodeName() }

func (p *Pod) nodeName() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.node == nil {
		return ""
	}
	return p.node.Spec.Name
}

// Restarts reports cumulative in-place container restarts.
func (p *Pod) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// StartedAt returns when the pod first reached Running (zero while
// pending/creating).
func (p *Pod) StartedAt() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startedAt
}

// Done is closed when the pod reaches a terminal state or is deleted.
func (p *Pod) Done() <-chan struct{} { return p.doneCh }

// setPhase transitions the pod and emits a watch event.
func (p *Pod) setPhase(ph PodPhase) {
	p.mu.Lock()
	if p.phase == ph || p.phase.Terminal() {
		p.mu.Unlock()
		return
	}
	p.phase = ph
	p.mu.Unlock()
	p.cluster.emit(Event{Type: EventPhaseChanged, Pod: p.Name(), Phase: ph})
}

// kill terminates the pod. Safe to call multiple times.
func (p *Pod) kill(why killReason) {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return
	}
	p.killed = true
	p.killWhy = why
	close(p.killCh)
	// Kill all live container processes.
	for _, cs := range p.containers {
		cs.killProcess()
	}
	p.mu.Unlock()
}

// crashContainer kills one container's process in place.
func (p *Pod) crashContainer(name string) error {
	p.mu.Lock()
	cs, ok := p.containers[name]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("pod %s: %w", p.Name(), errNoContainer(name))
	}
	cs.killProcess()
	return nil
}

func errNoContainer(name string) error {
	return fmt.Errorf("no such container %q: %w", name, errContainer)
}

// errContainer is the sentinel for unknown container names.
var errContainer = errors.New("kube: no such container")

// interruptibleSleep sleeps for d on the cluster clock, returning false
// if the pod is killed first.
func (p *Pod) interruptibleSleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := p.cluster.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-p.killCh:
		return false
	}
}

// run is the pod's kubelet lifecycle goroutine.
func (p *Pod) run() {
	defer p.finish()

	// 1. Scheduling: wait for a node with capacity.
	var node *Node
	for {
		select {
		case <-p.killCh:
			return
		default:
		}
		node = p.cluster.schedule(p.Spec)
		if node != nil {
			break
		}
		if !p.interruptibleSleep(200 * time.Millisecond) {
			return
		}
	}
	p.mu.Lock()
	p.node = node
	p.mu.Unlock()
	if !p.interruptibleSleep(p.cluster.jitter(p.cluster.timing.Schedule)) {
		return
	}

	// 2. Container creation: runtime setup plus volume binding.
	p.setPhase(PodCreating)
	setup := p.cluster.timing.ContainerCreate
	setup += time.Duration(len(p.Spec.Volumes)) * p.cluster.timing.VolumeBind
	if p.Spec.BindsObjectStore {
		setup += p.cluster.timing.ObjectStoreBind
	}
	if !p.interruptibleSleep(p.cluster.jitter(setup)) {
		return
	}

	// 3. Start containers concurrently; Running once all are started.
	var wgStart, wgRun sync.WaitGroup
	for _, cs := range p.containers {
		wgStart.Add(1)
		wgRun.Add(1)
		go func(cs *containerState) {
			defer wgRun.Done()
			p.superviseContainer(cs, &wgStart)
		}(cs)
	}
	started := make(chan struct{})
	go func() {
		wgStart.Wait()
		close(started)
	}()
	select {
	case <-started:
		p.setPhase(PodRunning)
		p.mu.Lock()
		p.startedAt = p.cluster.clk.Now()
		p.mu.Unlock()
	case <-p.killCh:
		// Fall through: supervisors observe the kill and unwind.
	}

	// 4. Wait for all containers to finish supervising.
	wgRun.Wait()
}

// superviseContainer runs one container's restart loop. wgStart is
// released after the first successful process start (or on kill).
func (p *Pod) superviseContainer(cs *containerState, wgStart *sync.WaitGroup) {
	startReleased := false
	releaseStart := func() {
		if !startReleased {
			startReleased = true
			wgStart.Done()
		}
	}
	defer releaseStart()

	for incarnation := 0; ; incarnation++ {
		if incarnation > 0 {
			// Count the restart when the container actually comes
			// back, as Kubernetes does.
			p.mu.Lock()
			p.restarts++
			p.mu.Unlock()
		}
		// Boot delay (image/runtime dependent).
		pullStart := p.cluster.clk.Now()
		if !p.interruptibleSleep(p.cluster.jitter(cs.spec.StartDelay)) {
			return
		}
		// A job-labeled pod's boot delay is traced as an image-pull span
		// in the job's trace; re-pulls after a crash are recovery cost.
		if jobID := p.Spec.Labels["job"]; jobID != "" && p.cluster.trace != nil {
			sp := p.cluster.trace.StartSpanAt(trace.JobRoot(jobID),
				"image-pull:"+p.Spec.Name+"/"+cs.spec.Name, pullStart)
			if incarnation > 0 {
				sp.SetPhase(trace.PhaseRecovery)
			} else {
				sp.SetPhase(trace.PhaseImagePull)
			}
			sp.EndAt(p.cluster.clk.Now())
		}
		procKill := make(chan struct{})
		cs.mu.Lock()
		cs.procKill = procKill
		cs.running = true
		cs.mu.Unlock()
		releaseStart()

		code := p.runProcess(cs, procKill, incarnation)

		cs.mu.Lock()
		cs.running = false
		cs.exits++
		cs.lastExit = code
		cs.mu.Unlock()

		select {
		case <-p.killCh:
			return
		default:
		}

		switch p.Spec.RestartPolicy {
		case RestartNever:
			return
		case RestartOnFailure:
			if code == 0 {
				return
			}
		case RestartAlways:
			// Always restart.
		}

		// First restart is immediate; repeated crashes back off
		// (CrashLoopBackOff).
		if incarnation > 0 {
			backoff := p.cluster.timing.CrashBackoffBase * time.Duration(1<<uint(min(incarnation-1, 5)))
			if !p.interruptibleSleep(backoff) {
				return
			}
		}
	}
}

// runProcess executes the container's process body until it exits, is
// killed, or fails its liveness probe, returning its exit code.
func (p *Pod) runProcess(cs *containerState, procKill chan struct{}, incarnation int) int {
	ctx := &ContainerCtx{
		pod:       p,
		container: cs.spec.Name,
		killedCh:  procKill,
		restart:   incarnation,
	}
	probeStop := p.startLivenessProbe(cs, procKill)
	if probeStop != nil {
		defer probeStop()
	}
	if cs.spec.Run == nil {
		// Server process: blocks until killed.
		<-procKill
		return exitKilled
	}
	done := make(chan int, 1)
	go func() { done <- cs.spec.Run(ctx) }()
	select {
	case code := <-done:
		return code
	case <-procKill:
		// Give the process a chance to observe the kill and return;
		// regardless, the container reports SIGKILL. A scheduler yield
		// plus a non-blocking poll stands in for the old time.After(0),
		// which smuggled a real-clock timer into the simulation.
		runtime.Gosched()
		select {
		case <-done:
		default:
		}
		return exitKilled
	}
}

// startLivenessProbe polls the container's liveness function and kills
// the process on failure. It returns a stop function, or nil when the
// container has no probe.
func (p *Pod) startLivenessProbe(cs *containerState, procKill chan struct{}) func() {
	if cs.spec.Liveness == nil {
		return nil
	}
	interval := cs.spec.LivenessInterval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	stop := make(chan struct{})
	go func() {
		t := p.cluster.clk.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-procKill:
				return
			case <-t.C():
				if !cs.spec.Liveness() {
					cs.killProcess()
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }) }
}

// killProcess terminates the container's current process, if running.
func (cs *containerState) killProcess() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.running && cs.procKill != nil {
		select {
		case <-cs.procKill:
		default:
			close(cs.procKill)
		}
	}
}

// ExitInfo reports a container's exit statistics.
func (p *Pod) ExitInfo(container string) (exits, lastCode int, running bool) {
	p.mu.Lock()
	cs := p.containers[container]
	p.mu.Unlock()
	if cs == nil {
		return 0, 0, false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.exits, cs.lastExit, cs.running
}

// finish computes the terminal phase, releases resources and notifies
// the owner controller.
func (p *Pod) finish() {
	p.mu.Lock()
	node := p.node
	killed := p.killed
	why := p.killWhy
	// Determine terminal phase.
	var phase PodPhase
	switch {
	case killed:
		phase = PodFailed
	default:
		phase = PodSucceeded
		for _, cs := range p.containers {
			cs.mu.Lock()
			if cs.lastExit != 0 {
				phase = PodFailed
			}
			cs.mu.Unlock()
		}
	}
	alreadyTerminal := p.phase.Terminal()
	if !alreadyTerminal {
		p.phase = phase
	}
	p.mu.Unlock()

	p.cluster.release(node, p.Spec)
	p.cluster.forget(p)
	if !alreadyTerminal {
		if killed && why == killDelete {
			p.cluster.emit(Event{Type: EventDeleted, Pod: p.Name(), Phase: phase})
		} else {
			p.cluster.emit(Event{Type: EventPhaseChanged, Pod: p.Name(), Phase: phase})
		}
	}
	close(p.doneCh)
	if p.owner != nil {
		p.owner.podTerminated(p, phase)
	}
}

// ContainerCtx is handed to container processes.
type ContainerCtx struct {
	pod       *Pod
	container string
	killedCh  chan struct{}
	restart   int
}

// Killed is closed when the process must terminate.
func (c *ContainerCtx) Killed() <-chan struct{} { return c.killedCh }

// PodName returns the owning pod's name.
func (c *ContainerCtx) PodName() string { return c.pod.Name() }

// Container returns this container's name.
func (c *ContainerCtx) Container() string { return c.container }

// Restart returns the incarnation number (0 = first run).
func (c *ContainerCtx) Restart() int { return c.restart }

// NodeName returns the node the pod runs on.
func (c *ContainerCtx) NodeName() string { return c.pod.nodeName() }

// Cluster returns the owning cluster (for service registration et al.).
func (c *ContainerCtx) Cluster() *Cluster { return c.pod.cluster }

// Clock returns the hosting node's local clock — the cluster clock,
// plus any skew injected with SetNodeSkew. Container processes must
// stamp the artifacts they produce (logs, status, metrics) with this
// clock, not the cluster clock: that is what makes clock-skew faults
// observable end to end. Pending pods read the cluster clock.
func (c *ContainerCtx) Clock() clock.Clock {
	return c.pod.cluster.NodeClock(c.pod.nodeName())
}

// Sleep pauses for d of cluster time; it returns false if the process
// was killed while sleeping.
func (c *ContainerCtx) Sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := c.pod.cluster.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-c.killedCh:
		return false
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
