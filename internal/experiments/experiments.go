// Package experiments regenerates every table and figure in the paper's
// evaluation section (Sec. IV): Fig. 2 (DLaaS vs bare-metal overhead on
// K80s), Fig. 3 (DLaaS PCIe P100 vs NVIDIA DGX-1), and Fig. 4
// (component crash-recovery times). The same code backs the root-level
// testing.B benchmarks and the cmd/dlaas-bench tool.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gpu"
	"repro/internal/trainsim"
)

// Fig2Row is one line of the paper's Fig. 2 table.
type Fig2Row struct {
	Benchmark string
	Framework string
	GPUs      int
	// DiffPercent is the throughput loss of DLaaS vs bare metal.
	DiffPercent float64
	// Bare and DLaaS are absolute throughputs (images/sec), reported
	// for transparency (the paper reports only the difference).
	Bare  float64
	DLaaS float64
}

// fig2Configs mirrors the paper's Fig. 2 rows: VGG-16/Caffe and
// InceptionV3/TensorFlow on 1-4 PCIe K80 GPUs.
func fig2Configs() []struct {
	model     trainsim.ModelSpec
	framework trainsim.Framework
	gpus      []int
} {
	return []struct {
		model     trainsim.ModelSpec
		framework trainsim.Framework
		gpus      []int
	}{
		{trainsim.VGG16, trainsim.Caffe, []int{1, 2, 3, 4}},
		{trainsim.InceptionV3, trainsim.TensorFlow, []int{1, 2, 3, 4}},
	}
}

// Fig2 computes the DLaaS-vs-bare-metal overhead table. Both sides
// train the same benchmark on PCIe K80s with data streamed over 1GbE
// (as in the paper); the platform side adds container, helper, and
// interference overheads.
func Fig2(seed uint64) []Fig2Row {
	var rows []Fig2Row
	for _, cfg := range fig2Configs() {
		for _, n := range cfg.gpus {
			bare := trainsim.Config{
				Model:     cfg.model,
				Framework: cfg.framework,
				GPU:       gpu.K80,
				NumGPUs:   n,
				Overheads: trainsim.BareMetal(),
				Seed:      seed,
			}
			plat := bare
			plat.Overheads = trainsim.DLaaS()
			rows = append(rows, Fig2Row{
				Benchmark:   displayModel(cfg.model),
				Framework:   displayFramework(cfg.framework),
				GPUs:        n,
				DiffPercent: trainsim.OverheadPercent(bare, plat),
				Bare:        bare.Throughput(),
				DLaaS:       plat.Throughput(),
			})
		}
	}
	return rows
}

// Fig3Row is one line of the paper's Fig. 3 table.
type Fig3Row struct {
	Benchmark string
	Framework string
	GPUs      int
	GPUType   string
	// DiffPercent is the throughput loss of DLaaS (PCIe P100) vs the
	// DGX-1 (NVLink SXM2 P100).
	DiffPercent float64
	DGX         float64
	DLaaS       float64
}

// Fig3 computes the DLaaS-vs-DGX-1 table: TensorFlow HPM benchmarks on
// 1 and 2 P100s. The DGX-1 advantage combines higher SXM2 sustained
// clocks (single GPU) with NVLink gradient exchange (multi GPU), so the
// gap grows with GPU count and with model size.
func Fig3(seed uint64) []Fig3Row {
	models := []trainsim.ModelSpec{trainsim.InceptionV3, trainsim.ResNet50, trainsim.VGG16}
	var rows []Fig3Row
	for _, n := range []int{1, 2} {
		for _, m := range models {
			dgx := trainsim.Config{
				Model:     m,
				Framework: trainsim.TensorFlow,
				GPU:       gpu.P100SXM2,
				NumGPUs:   n,
				Overheads: trainsim.BareMetal(),
				Seed:      seed,
			}
			plat := trainsim.Config{
				Model:     m,
				Framework: trainsim.TensorFlow,
				GPU:       gpu.P100,
				NumGPUs:   n,
				Overheads: trainsim.DLaaS(),
				Seed:      seed,
			}
			rows = append(rows, Fig3Row{
				Benchmark:   displayModel(m),
				Framework:   "TensorFlow",
				GPUs:        n,
				GPUType:     "P100",
				DiffPercent: trainsim.OverheadPercent(dgx, plat),
				DGX:         dgx.Throughput(),
				DLaaS:       plat.Throughput(),
			})
		}
	}
	return rows
}

// Fig4Row is one line of the paper's Fig. 4 table.
type Fig4Row struct {
	Component string
	// Min and Max bound the observed recovery times, the "3-5s" format
	// the paper reports.
	Min time.Duration
	Max time.Duration
	// Samples holds the individual measurements.
	Samples []time.Duration
}

// FormatFig2 renders the table in the paper's layout.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-11s %7s %12s %10s %10s\n",
		"Benchmark", "Framework", "# GPUs", "Diff (%)", "Bare(i/s)", "DLaaS(i/s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-11s %7d %12.2f %10.1f %10.1f\n",
			r.Benchmark, r.Framework, r.GPUs, r.DiffPercent, r.Bare, r.DLaaS)
	}
	return b.String()
}

// FormatFig3 renders the table in the paper's layout.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-11s %7s %-8s %12s %10s %10s\n",
		"Benchmark", "Framework", "# GPUs", "GPU", "Diff (%)", "DGX(i/s)", "DLaaS(i/s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-11s %7d %-8s %12.2f %10.1f %10.1f\n",
			r.Benchmark, r.Framework, r.GPUs, r.GPUType, r.DiffPercent, r.DGX, r.DLaaS)
	}
	return b.String()
}

// FormatFig4 renders the recovery table in the paper's layout.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s\n", "Component", "Time to recover")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %.1f-%.1fs\n", r.Component, r.Min.Seconds(), r.Max.Seconds())
	}
	return b.String()
}

func displayModel(m trainsim.ModelSpec) string {
	switch m.Name {
	case "vgg16":
		return "VGG-16"
	case "resnet50":
		return "Resnet-50"
	case "inceptionv3":
		return "InceptionV3"
	default:
		return m.Name
	}
}

func displayFramework(f trainsim.Framework) string {
	switch f {
	case trainsim.Caffe:
		return "Caffe"
	case trainsim.TensorFlow:
		return "TensorFlow"
	default:
		return string(f)
	}
}
