package experiments

import (
	"strings"
	"testing"
	"time"
)

// Fig. 2 shape: the paper reports 0.32%-5.88% platform overhead with no
// monotone trend in GPU count — small, noisy, always nonnegative.
func TestFig2Shape(t *testing.T) {
	rows := Fig2(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.DiffPercent < 0 || r.DiffPercent > 9 {
			t.Errorf("%s/%s x%d overhead = %.2f%%, want [0,9]",
				r.Benchmark, r.Framework, r.GPUs, r.DiffPercent)
		}
		if r.DLaaS >= r.Bare {
			t.Errorf("%s x%d DLaaS (%.1f) not slower than bare (%.1f)",
				r.Benchmark, r.GPUs, r.DLaaS, r.Bare)
		}
	}
	// The overhead must look like noise, not a scaling wall: the 4-GPU
	// overhead should stay in the same band as 1-GPU, not explode.
	for _, model := range []string{"VGG-16", "InceptionV3"} {
		var one, four float64
		for _, r := range rows {
			if r.Benchmark != model {
				continue
			}
			if r.GPUs == 1 {
				one = r.DiffPercent
			}
			if r.GPUs == 4 {
				four = r.DiffPercent
			}
		}
		if four > one+8 {
			t.Errorf("%s: overhead grows like a wall: 1 GPU %.2f%% -> 4 GPU %.2f%%", model, one, four)
		}
	}
}

// Fig. 3 shape: the paper reports 3.30%-13.69% degradation vs DGX-1,
// growing with GPU count, and at 2 GPUs ordered VGG > ResNet > Inception.
func TestFig3Shape(t *testing.T) {
	rows := Fig3(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.DiffPercent <= 0 || r.DiffPercent > 20 {
			t.Errorf("%s x%d diff = %.2f%%, want (0,20]", r.Benchmark, r.GPUs, r.DiffPercent)
		}
		byKey[r.Benchmark+string(rune('0'+r.GPUs))] = r.DiffPercent
	}
	// Gap grows with GPU count for every model.
	for _, m := range []string{"VGG-16", "Resnet-50", "InceptionV3"} {
		if byKey[m+"2"] <= byKey[m+"1"] {
			t.Errorf("%s: 2-GPU gap (%.2f%%) not larger than 1-GPU (%.2f%%)",
				m, byKey[m+"2"], byKey[m+"1"])
		}
	}
	// At 2 GPUs the communication-heavy model suffers most.
	if !(byKey["VGG-162"] > byKey["Resnet-502"]) {
		t.Errorf("2-GPU ordering: VGG (%.2f%%) should exceed ResNet (%.2f%%)",
			byKey["VGG-162"], byKey["Resnet-502"])
	}
}

func TestFig2Deterministic(t *testing.T) {
	a, b := Fig2(7), Fig2(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs", i)
		}
	}
	// A different seed perturbs the noise.
	c := Fig2(8)
	same := true
	for i := range a {
		if a[i].DiffPercent != c[i].DiffPercent {
			same = false
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestFormatting(t *testing.T) {
	f2 := FormatFig2(Fig2(1))
	if !strings.Contains(f2, "VGG-16") || !strings.Contains(f2, "Diff (%)") {
		t.Fatalf("fig2 table malformed:\n%s", f2)
	}
	f3 := FormatFig3(Fig3(1))
	if !strings.Contains(f3, "P100") {
		t.Fatalf("fig3 table malformed:\n%s", f3)
	}
	f4 := FormatFig4([]Fig4Row{{Component: "API", Min: 3 * time.Second, Max: 5 * time.Second}})
	if !strings.Contains(f4, "API") || !strings.Contains(f4, "3.0-5.0s") {
		t.Fatalf("fig4 table malformed:\n%s", f4)
	}
}

// Fig. 4 shape: recovery ordering Guardian < API <= LCM < Learner, with
// the learner slowest (object-store + NFS re-binding plus framework
// image start). This is the full-platform experiment, so it runs the
// whole stack once.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-platform experiment")
	}
	rows, err := Fig4(Fig4Options{SamplesPerComponent: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Component] = r
		if r.Min <= 0 || r.Max < r.Min {
			t.Errorf("%s: bad range %v-%v", r.Component, r.Min, r.Max)
		}
	}
	if len(byName) != 5 {
		t.Fatalf("components = %v", byName)
	}
	if !(byName["Guardian"].Max < byName["API"].Min) {
		t.Errorf("Guardian (%v) should recover faster than API (%v)",
			byName["Guardian"].Max, byName["API"].Min)
	}
	if !(byName["API"].Min <= byName["LCM"].Max) {
		t.Errorf("API (%v) should not be slower than LCM (%v)",
			byName["API"].Min, byName["LCM"].Max)
	}
	if !(byName["Learner"].Min > byName["LCM"].Max) {
		t.Errorf("Learner (%v) should be the slowest (LCM %v)",
			byName["Learner"].Min, byName["LCM"].Max)
	}
	// Learner recovery lands in the paper's 10-20s band (the one range
	// wide enough to assert absolutely).
	if byName["Learner"].Min < 8*time.Second || byName["Learner"].Max > 25*time.Second {
		t.Errorf("Learner recovery %v-%v outside plausible band",
			byName["Learner"].Min, byName["Learner"].Max)
	}
}
