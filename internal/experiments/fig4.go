package experiments

import (
	"fmt"
	"time"

	dlaas "repro"

	"repro/internal/chaos"
)

// Fig4Options configure the crash-recovery experiment.
type Fig4Options struct {
	// SamplesPerComponent is how many crash/recover cycles to measure
	// per component (the paper reports a min-max range).
	SamplesPerComponent int
	// Seed controls timing jitter.
	Seed int64
}

func (o Fig4Options) withDefaults() Fig4Options {
	if o.SamplesPerComponent <= 0 {
		o.SamplesPerComponent = 3
	}
	return o
}

// Fig4 reproduces the component crash-recovery experiment: boot the full
// platform, run a long training job, kill each component with the chaos
// injector, and measure virtual time until the component is back. Rows
// come back in the paper's order: API, LCM, Guardian, Helper, Learner.
func Fig4(opts Fig4Options) ([]Fig4Row, error) {
	opts = opts.withDefaults()
	p, err := dlaas.New(dlaas.Options{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("fig4: booting platform: %w", err)
	}
	defer p.Close()

	// Stage a long-running training job so the per-job components
	// (Guardian, Helper, Learner) exist throughout the experiment.
	client := p.Client("bench")
	creds := dlaas.Credentials{AccessKey: "bench", SecretKey: "bench-secret"}
	data, err := p.CreateDataset("bench-data", "train/imagenet.rec", 4<<30, creds)
	if err != nil {
		return nil, err
	}
	results, err := p.CreateResultsBucket("bench-results", creds)
	if err != nil {
		return nil, err
	}
	id, err := client.Submit(&dlaas.Manifest{
		Name:               "fig4-victim",
		Framework:          "tensorflow",
		Model:              "resnet50",
		Learners:           1,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             10,
		DatasetImages:      500000, // hours of training: survives all injections
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: 5 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	if _, err := client.WaitForState(id, dlaas.StateProcessing, 2*time.Hour); err != nil {
		return nil, fmt.Errorf("fig4: victim job never trained: %w", err)
	}

	inj := p.Chaos()
	components := []struct {
		name     string
		selector map[string]string
		timeout  time.Duration
	}{
		{"API", map[string]string{"app": "dlaas-api"}, 2 * time.Minute},
		{"LCM", map[string]string{"app": "dlaas-lcm"}, 2 * time.Minute},
		{"Guardian", map[string]string{"app": "dlaas-guardian", "job": id}, 2 * time.Minute},
		{"Helper", map[string]string{"app": "dlaas-helper", "job": id}, 2 * time.Minute},
		{"Learner", map[string]string{"app": "dlaas-learner", "job": id}, 5 * time.Minute},
	}

	rows := make([]Fig4Row, 0, len(components))
	for _, comp := range components {
		samples, err := inj.Sample(opts.SamplesPerComponent, 5*time.Second, func() (time.Duration, error) {
			return inj.MeasurePodRecovery(comp.selector, comp.timeout)
		})
		if err != nil {
			return rows, fmt.Errorf("fig4: measuring %s: %w", comp.name, err)
		}
		lo, hi := chaos.MinMax(samples)
		rows = append(rows, Fig4Row{Component: comp.name, Min: lo, Max: hi, Samples: samples})
	}
	return rows, nil
}
