// Package jobmonitor is the dependability campaign's verdict oracle: an
// independent observer that watches one training job through the
// platform's own event feeds and, once the job settles, renders a
// machine-checkable verdict. In the spirit of verification-condition
// generation, it reduces "the platform handled these faults dependably"
// to a conjunction of per-job checks:
//
//   - the terminal state is legal for the faults injected;
//   - the observed state transitions walk the job state machine, with
//     monotone central timestamps (even under injected node clock skew);
//   - no acknowledged work is lost: every checkpoint a learner logged
//     (periodic or eviction-grace on-demand) is reflected in any later
//     resume point, and logs survive to the results bucket;
//   - the job is not stuck past a liveness deadline;
//   - learner/etcd/mongo metadata are mutually consistent at the end —
//     coordination keys cleaned up, workloads torn down, the volume
//     released, and a COMPLETED job backed by a stored model.
package jobmonitor

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/guardian"
	"repro/internal/core/helper"
	"repro/internal/core/learner"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/kube"
	"repro/internal/mongo"
	"repro/internal/objectstore"
	"repro/internal/trace"
)

// Config hands the oracle read access to the platform substrates. The
// oracle only observes: it never mutates platform state.
type Config struct {
	Clock   clock.Clock
	Jobs    *mongo.Collection
	Etcd    *etcd.Store
	Cluster *kube.Cluster
	Store   *objectstore.Store
	// Trace, when set, enriches the verdict with the job's critical-path
	// phase attribution and recovery cost. The timing never feeds the
	// pass/fail checks or the campaign fingerprint.
	Trace *trace.Recorder
}

// JobRef identifies the job under observation and how to reach its
// artifacts.
type JobRef struct {
	ID            string
	Learners      int
	ResultsBucket string
	Creds         objectstore.Credentials
}

// Expect describes the legal outcome for the faults a scenario injects.
type Expect struct {
	// Terminal lists the states the job may legally end in.
	Terminal []types.JobState
	// Deadline is the liveness budget (virtual time from Watch): the
	// job must reach a terminal state within it.
	Deadline time.Duration
}

// Check is one named pass/fail condition of a verdict.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// Verdict is the oracle's judgment of one job. CriticalPath and
// RecoveryCost are diagnostic context from the job's trace — what the
// faults actually cost on the critical path, in virtual time — and are
// deliberately excluded from fingerprinting (timing is environment-
// sensitive in ways the pass/fail checks are not).
type Verdict struct {
	JobID        string            `json:"job_id"`
	Terminal     types.JobState    `json:"terminal,omitempty"`
	Checks       []Check           `json:"checks"`
	Pass         bool              `json:"pass"`
	CriticalPath []trace.PhaseCost `json:"critical_path,omitempty"`
	RecoveryCost time.Duration     `json:"recovery_cost,omitempty"`
}

// observation is one state change seen on the feed.
type observation struct {
	state types.JobState
	at    time.Time
}

// Monitor watches one job. Create with Watch, harvest with Verdict.
type Monitor struct {
	cfg    Config
	ref    JobRef
	expect Expect

	cancel func()
	done   chan struct{}

	mu          sync.Mutex
	observed    []observation
	terminal    bool
	deadlineHit bool
}

// metadataGrace is how long (virtual) the oracle waits after the
// terminal state for asynchronous teardown — etcd cleanup, workload
// deletion, volume release — before calling the metadata inconsistent.
const metadataGrace = 3 * time.Minute

// Watch starts observing the job through the metadata change feed (the
// PR 3 event-driven control plane: revision-ordered, no polling) plus a
// liveness timer on the virtual clock. Call after the job is submitted.
func Watch(cfg Config, ref JobRef, expect Expect) (*Monitor, error) {
	m := &Monitor{cfg: cfg, ref: ref, expect: expect, done: make(chan struct{})}
	feed, cancel, err := cfg.Jobs.WatchKey(ref.ID)
	if err != nil {
		return nil, fmt.Errorf("jobmonitor: %w", err)
	}
	m.cancel = cancel

	// Seed with the current record: the feed only carries changes
	// committed after the watch opened.
	if doc, err := cfg.Jobs.FindOne(mongo.Filter{"_id": ref.ID}); err == nil {
		rec := core.RecordFromDoc(doc)
		m.record(rec)
	}

	go m.pump(feed)
	return m, nil
}

func (m *Monitor) pump(feed <-chan mongo.ChangeEvent) {
	deadline := m.cfg.Clock.NewTimer(m.expect.Deadline)
	defer deadline.Stop()
	defer m.cancel()
	for {
		m.mu.Lock()
		terminal := m.terminal
		m.mu.Unlock()
		if terminal {
			close(m.done)
			return
		}
		select {
		case ev, ok := <-feed:
			if !ok {
				close(m.done)
				return
			}
			if ev.Deleted {
				continue
			}
			m.record(core.RecordFromDoc(ev.Doc))
		case <-deadline.C():
			m.mu.Lock()
			m.deadlineHit = true
			m.mu.Unlock()
			close(m.done)
			return
		}
	}
}

// record folds one job record into the observed transition history.
func (m *Monitor) record(rec types.JobRecord) {
	if rec.State == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.observed)
	if n > 0 && m.observed[n-1].state == rec.State {
		return // same-state metadata update (e.g. retry counter)
	}
	m.observed = append(m.observed, observation{state: rec.State, at: rec.UpdatedAt})
	if rec.State.Terminal() {
		m.terminal = true
	}
}

// Verdict blocks until the job reaches a terminal state or the liveness
// deadline passes, then runs the final consistency checks and renders
// the verdict. Standing faults should be healed before calling it: the
// oracle reads through the same substrates the platform uses.
func (m *Monitor) Verdict() Verdict {
	<-m.done

	m.mu.Lock()
	observed := make([]observation, len(m.observed))
	copy(observed, m.observed)
	deadlineHit := m.deadlineHit
	m.mu.Unlock()

	var final types.JobState
	if n := len(observed); n > 0 {
		final = observed[n-1].state
	}

	v := Verdict{JobID: m.ref.ID, Terminal: final}
	add := func(name string, pass bool, detail string) {
		if pass {
			detail = ""
		}
		v.Checks = append(v.Checks, Check{Name: name, Pass: pass, Detail: detail})
	}

	// 1. Liveness: terminal before the deadline.
	add("liveness", !deadlineHit && final.Terminal(),
		fmt.Sprintf("job not terminal within %v (last state %s)", m.expect.Deadline, final))

	// 2. Terminal state legal for the injected faults.
	legal := false
	for _, s := range m.expect.Terminal {
		if final == s {
			legal = true
		}
	}
	add("terminal-state", legal,
		fmt.Sprintf("terminal %s not in expected %v", final, m.expect.Terminal))

	// 3. Observed transitions walk the state machine with monotone
	// central timestamps.
	pass, detail := checkTransitions(observed)
	add("history-transitions", pass, detail)

	// 4 + 5. Work/log preservation and metadata consistency only mean
	// something once the job settled.
	if final.Terminal() {
		pass, detail = m.checkWorkPreserved(final)
		add("no-lost-acked-work", pass, detail)
		pass, detail = m.checkMetadataConsistent(final)
		add("metadata-consistent", pass, detail)
	}

	v.Pass = true
	for _, c := range v.Checks {
		v.Pass = v.Pass && c.Pass
	}

	// Attach the traced cost of whatever happened to this job: which
	// phases its wall time went to, and how much of the critical path
	// was recovery/stall/evict work caused by the injected faults.
	if t := m.cfg.Trace.Tree(m.ref.ID); t != nil {
		att := trace.CriticalPath(t)
		v.CriticalPath = att.Phases
		v.RecoveryCost = att.Recovery
	}
	return v
}

// checkTransitions validates the observed state sequence against the
// job state machine and demands non-decreasing central timestamps —
// the guarantee that survives injected node clock skew, because job
// history is stamped by the core services' clock, not the learners'.
func checkTransitions(observed []observation) (bool, string) {
	for k := 1; k < len(observed); k++ {
		prev, cur := observed[k-1], observed[k]
		if !types.CanTransition(prev.state, cur.state) {
			return false, fmt.Sprintf("illegal transition %s -> %s", prev.state, cur.state)
		}
		if cur.at.Before(prev.at) {
			return false, fmt.Sprintf("timestamps regress: %s@%v then %s@%v",
				prev.state, prev.at, cur.state, cur.at)
		}
	}
	return true, ""
}

var (
	resumedRe = regexp.MustCompile(`resumed from checkpoint at (\d+)/`)
	ckptRe    = regexp.MustCompile(`checkpoint at (\d+)/`)
)

// checkWorkPreserved audits each learner's shipped log (PR 4's
// lost-images accounting): a resume point may never fall below a
// checkpoint the same learner had already logged as durable — loss of
// acknowledged images — and the log itself must have survived to the
// results bucket, complete through "training complete" for a COMPLETED
// job.
func (m *Monitor) checkWorkPreserved(final types.JobState) (bool, string) {
	for l := 0; l < m.ref.Learners; l++ {
		obj, err := m.cfg.Store.Get(m.ref.ResultsBucket, learner.ResultLogKey(m.ref.ID, l), m.ref.Creds)
		if err != nil {
			return false, fmt.Sprintf("learner %d log lost: %v", l, err)
		}
		text := string(obj.Data)
		if strings.TrimSpace(text) == "" {
			return false, fmt.Sprintf("learner %d log empty", l)
		}
		var maxCkpt int64
		for _, line := range strings.Split(text, "\n") {
			if mm := resumedRe.FindStringSubmatch(line); mm != nil {
				resumed, _ := strconv.ParseInt(mm[1], 10, 64)
				if resumed < maxCkpt {
					return false, fmt.Sprintf("learner %d lost %d acked images: resumed at %d after checkpoint %d",
						l, maxCkpt-resumed, resumed, maxCkpt)
				}
				continue
			}
			if mm := ckptRe.FindStringSubmatch(line); mm != nil {
				if n, _ := strconv.ParseInt(mm[1], 10, 64); n > maxCkpt {
					maxCkpt = n
				}
			}
		}
		if final == types.StateCompleted && !strings.Contains(text, "training complete") {
			return false, fmt.Sprintf("learner %d log missing completion marker", l)
		}
	}
	return true, ""
}

// checkMetadataConsistent verifies the end-state agreement between
// etcd, Kubernetes, NFS, MongoDB and the object store, polling through
// a grace window because teardown is asynchronous.
func (m *Monitor) checkMetadataConsistent(final types.JobState) (bool, string) {
	deadline := m.cfg.Clock.Now().Add(metadataGrace)
	for {
		detail := m.metadataProblem(final)
		if detail == "" {
			return true, ""
		}
		if !m.cfg.Clock.Now().Before(deadline) {
			return false, detail
		}
		m.cfg.Clock.Sleep(time.Second)
	}
}

// metadataProblem returns the first inconsistency found, or "".
func (m *Monitor) metadataProblem(final types.JobState) string {
	id := m.ref.ID

	// etcd: every coordination key must be cleaned up after terminal.
	if kvs, err := m.cfg.Etcd.Range(types.JobPrefix(id)); err != nil {
		return fmt.Sprintf("etcd unreadable: %v", err)
	} else if len(kvs) > 0 {
		return fmt.Sprintf("%d stale etcd keys under %s (first %s)", len(kvs), types.JobPrefix(id), kvs[0].Key)
	}

	// Kubernetes: the job's workloads must be gone.
	if m.cfg.Cluster.StatefulSetByName(guardian.LearnerSetName(id)) != nil {
		return "learner StatefulSet still present"
	}
	if m.cfg.Cluster.DeploymentByName(guardian.HelperName(id)) != nil {
		return "helper deployment still present"
	}
	if pods := m.cfg.Cluster.Pods(map[string]string{"job": id}); len(pods) > 0 {
		return fmt.Sprintf("%d job pods still present (first %s)", len(pods), pods[0].Name())
	}

	// NFS: the shared volume must be released.
	if srv := m.cfg.Cluster.NFS(); srv != nil {
		if _, err := srv.Volume(guardian.VolumeName(id)); err == nil {
			return "NFS volume still provisioned"
		}
	}

	// MongoDB: the durable record must agree with the feed.
	doc, err := m.cfg.Jobs.FindOne(mongo.Filter{"_id": id})
	if err != nil {
		return fmt.Sprintf("job record unreadable: %v", err)
	}
	if rec := core.RecordFromDoc(doc); rec.State != final {
		return fmt.Sprintf("mongo state %s disagrees with observed terminal %s", rec.State, final)
	}

	// Object store: a COMPLETED job is backed by a stored model.
	if final == types.StateCompleted {
		if _, err := m.cfg.Store.Stat(m.ref.ResultsBucket, helper.ResultModelKey(id), m.ref.Creds); err != nil {
			return fmt.Sprintf("model object missing: %v", err)
		}
	}
	return ""
}
