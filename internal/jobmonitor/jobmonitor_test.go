package jobmonitor

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/kube"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/objectstore"
)

const (
	testJobID  = "job-oracle-1"
	testBucket = "results-test"
)

var testCreds = objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}

// fixture wires a minimal set of real substrates (no running platform)
// so the oracle's checks can be exercised against hand-built states.
type fixture struct {
	clk   *clock.Sim
	jobs  *mongo.Collection
	store *objectstore.Store
	cfg   Config
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := clock.NewSim()
	cluster := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"})
	ec := etcd.New(1, clk)
	db := mongo.New(clk)
	store := objectstore.New(clk, netsim.NewSharedLink(netsim.Ethernet1G, clk))
	if err := store.CreateBucket(testBucket, testCreds); err != nil {
		t.Fatalf("CreateBucket: %v", err)
	}
	t.Cleanup(func() {
		cluster.Stop()
		clk.Close()
	})
	jobs := db.Collection(core.JobsCollection)
	return &fixture{
		clk:   clk,
		jobs:  jobs,
		store: store,
		cfg:   Config{Clock: clk, Jobs: jobs, Etcd: ec, Cluster: cluster, Store: store},
	}
}

func (f *fixture) insertJob(t *testing.T, state types.JobState) {
	t.Helper()
	err := f.jobs.InsertOne(mongo.Document{
		"_id":        testJobID,
		"tenant":     "t1",
		"state":      string(state),
		"updated_at": f.clk.Now(),
	})
	if err != nil {
		t.Fatalf("InsertOne: %v", err)
	}
}

func (f *fixture) setState(t *testing.T, state types.JobState) {
	t.Helper()
	_, err := f.jobs.UpdateOne(mongo.Filter{"_id": testJobID}, mongo.Document{
		"state":      string(state),
		"updated_at": f.clk.Now(),
	})
	if err != nil {
		t.Fatalf("UpdateOne(%s): %v", state, err)
	}
}

// putLog ships a learner-0 log into the results bucket.
func (f *fixture) putLog(t *testing.T, lines ...string) {
	t.Helper()
	key := fmt.Sprintf("logs/%s/learner-0.log", testJobID)
	data := []byte(strings.Join(lines, "\n") + "\n")
	if err := f.store.Put(testBucket, key, data, testCreds); err != nil {
		t.Fatalf("Put log: %v", err)
	}
}

func (f *fixture) putModel(t *testing.T) {
	t.Helper()
	key := fmt.Sprintf("models/%s/model.bin", testJobID)
	if err := f.store.Put(testBucket, key, []byte("weights"), testCreds); err != nil {
		t.Fatalf("Put model: %v", err)
	}
}

func (f *fixture) watch(t *testing.T, expect Expect) *Monitor {
	t.Helper()
	m, err := Watch(f.cfg, JobRef{
		ID: testJobID, Learners: 1, ResultsBucket: testBucket, Creds: testCreds,
	}, expect)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	return m
}

func check(v Verdict, name string) Check {
	for _, c := range v.Checks {
		if c.Name == name {
			return c
		}
	}
	return Check{Name: name, Detail: "check not rendered"}
}

func completionExpect() Expect {
	return Expect{Terminal: []types.JobState{types.StateCompleted}, Deadline: time.Hour}
}

func TestVerdictPassesForCleanCompletion(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t,
		"learner 0 starting (incarnation 0) on node n1",
		"checkpoint at 2000/4000 images (1024 bytes)",
		"training complete: 4000 images",
	)
	f.putModel(t)

	m := f.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f.clk.Sleep(time.Second)
		f.setState(t, s)
	}

	v := m.Verdict()
	if !v.Pass {
		t.Fatalf("verdict failed: %+v", v.Checks)
	}
	if v.Terminal != types.StateCompleted {
		t.Fatalf("terminal = %s, want COMPLETED", v.Terminal)
	}
	if len(v.Checks) != 5 {
		t.Fatalf("got %d checks, want 5: %+v", len(v.Checks), v.Checks)
	}
}

func TestVerdictFlagsIllegalTransition(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t, "training complete: 4000 images")
	f.putModel(t)

	m := f.watch(t, completionExpect())
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateCompleted) // QUEUED -> COMPLETED skips the pipeline

	v := m.Verdict()
	if v.Pass {
		t.Fatal("verdict passed despite illegal transition")
	}
	if c := check(v, "history-transitions"); c.Pass {
		t.Fatalf("history-transitions passed: %+v", v.Checks)
	} else if !strings.Contains(c.Detail, "QUEUED -> COMPLETED") {
		t.Fatalf("detail %q does not name the transition", c.Detail)
	}
}

func TestVerdictFlagsTimestampRegression(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t, "training complete: 4000 images")
	f.putModel(t)

	m := f.watch(t, completionExpect())
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateDeploying)
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateProcessing)
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateStoring)
	// A skewed writer stamps the terminal record in the past.
	_, err := f.jobs.UpdateOne(mongo.Filter{"_id": testJobID}, mongo.Document{
		"state":      string(types.StateCompleted),
		"updated_at": f.clk.Now().Add(-time.Minute),
	})
	if err != nil {
		t.Fatalf("UpdateOne: %v", err)
	}

	v := m.Verdict()
	if c := check(v, "history-transitions"); c.Pass {
		t.Fatalf("history-transitions passed despite regressed timestamp: %+v", v.Checks)
	} else if !strings.Contains(c.Detail, "regress") {
		t.Fatalf("detail %q does not mention regression", c.Detail)
	}
}

func TestVerdictFlagsLostAckedWork(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	// The learner logged a durable checkpoint at 3000, then resumed at
	// 1000: 2000 acknowledged images were lost.
	f.putLog(t,
		"checkpoint at 3000/4000 images (1024 bytes)",
		"learner 0 starting (incarnation 1) on node n1",
		"resumed from checkpoint at 1000/4000 images",
		"training complete: 4000 images",
	)
	f.putModel(t)

	m := f.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f.clk.Sleep(time.Second)
		f.setState(t, s)
	}

	v := m.Verdict()
	if c := check(v, "no-lost-acked-work"); c.Pass {
		t.Fatalf("no-lost-acked-work passed: %+v", v.Checks)
	} else if !strings.Contains(c.Detail, "lost 2000 acked images") {
		t.Fatalf("detail %q does not quantify the loss", c.Detail)
	}

	// An on-demand (eviction-grace) checkpoint followed by a resume at
	// the same point is NOT a loss.
	f2 := newFixture(t)
	f2.insertJob(t, types.StateQueued)
	f2.putLog(t,
		"on-demand checkpoint at 2500/4000 images (eviction grace)",
		"resumed from checkpoint at 2500/4000 images",
		"training complete: 4000 images",
	)
	f2.putModel(t)
	m2 := f2.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f2.clk.Sleep(time.Second)
		f2.setState(t, s)
	}
	if v2 := m2.Verdict(); !v2.Pass {
		t.Fatalf("equal-point resume flagged as loss: %+v", v2.Checks)
	}
}

func TestVerdictFlagsMissingLogAndModel(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	// No log, no model shipped.
	m := f.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f.clk.Sleep(time.Second)
		f.setState(t, s)
	}

	v := m.Verdict()
	if c := check(v, "no-lost-acked-work"); c.Pass {
		t.Fatalf("no-lost-acked-work passed with no shipped log: %+v", v.Checks)
	}
	if c := check(v, "metadata-consistent"); c.Pass {
		t.Fatalf("metadata-consistent passed with no model object: %+v", v.Checks)
	}
}

func TestVerdictLivenessDeadline(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	m := f.watch(t, Expect{
		Terminal: []types.JobState{types.StateCompleted},
		Deadline: 30 * time.Second,
	})
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateDeploying) // then the job wedges

	v := m.Verdict()
	if v.Pass {
		t.Fatal("verdict passed despite liveness breach")
	}
	if c := check(v, "liveness"); c.Pass {
		t.Fatalf("liveness passed: %+v", v.Checks)
	}
	if c := check(v, "terminal-state"); c.Pass {
		t.Fatalf("terminal-state passed for non-terminal DEPLOYING: %+v", v.Checks)
	}
	// Settlement checks are meaningless for a non-terminal job.
	if len(v.Checks) != 3 {
		t.Fatalf("got %d checks for wedged job, want 3: %+v", len(v.Checks), v.Checks)
	}
}

func TestVerdictFlagsStaleEtcdKeys(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t, "training complete: 4000 images")
	f.putModel(t)
	if _, err := f.cfg.Etcd.Put(types.JobPrefix(testJobID)+"learners/0/status", "PROCESSING"); err != nil {
		t.Fatalf("etcd Put: %v", err)
	}

	m := f.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f.clk.Sleep(time.Second)
		f.setState(t, s)
	}

	v := m.Verdict()
	if c := check(v, "metadata-consistent"); c.Pass {
		t.Fatalf("metadata-consistent passed with stale etcd keys: %+v", v.Checks)
	} else if !strings.Contains(c.Detail, "stale etcd keys") {
		t.Fatalf("detail %q does not name stale keys", c.Detail)
	}
}

func TestWatchUnknownJobStillRendersVerdict(t *testing.T) {
	f := newFixture(t)
	// Job never created: the oracle should time out on the deadline, not
	// hang or crash.
	m := f.watch(t, Expect{
		Terminal: []types.JobState{types.StateCompleted},
		Deadline: 10 * time.Second,
	})
	v := m.Verdict()
	if v.Pass {
		t.Fatal("verdict passed for a job that never existed")
	}
	if v.Terminal != "" {
		t.Fatalf("terminal = %q, want empty", v.Terminal)
	}
}

func TestVerdictExpectedFailureIsLegal(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t, "learner 0 starting (incarnation 0) on node n1")

	m := f.watch(t, Expect{
		Terminal: []types.JobState{types.StateFailed, types.StateHalted},
		Deadline: time.Hour,
	})
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateDeploying)
	f.clk.Sleep(time.Second)
	f.setState(t, types.StateFailed)

	v := m.Verdict()
	if !v.Pass {
		t.Fatalf("expected-FAILED verdict did not pass: %+v", v.Checks)
	}
	if c := check(v, "terminal-state"); !c.Pass {
		t.Fatalf("terminal-state failed for expected FAILED: %+v", c)
	}
}

func TestEtcdUnreadableIsInconsistent(t *testing.T) {
	f := newFixture(t)
	f.insertJob(t, types.StateQueued)
	f.putLog(t, "training complete: 4000 images")
	f.putModel(t)

	// Swap in a 3-node etcd and partition every node: quorum reads must
	// fail and the oracle must report the inconsistency, not mask it. (A
	// single-node cluster is its own quorum, so it cannot lose reads.)
	ec := etcd.New(3, f.clk)
	f.cfg.Etcd = ec
	for _, id := range ec.Nodes() {
		ec.PartitionNode(id)
	}
	if _, err := ec.Range(types.JobPrefix(testJobID)); err == nil {
		t.Fatal("Range succeeded under full partition")
	}

	m := f.watch(t, completionExpect())
	for _, s := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		f.clk.Sleep(time.Second)
		f.setState(t, s)
	}
	v := m.Verdict()
	if c := check(v, "metadata-consistent"); c.Pass {
		t.Fatalf("metadata-consistent passed with etcd unreadable: %+v", v.Checks)
	} else if !strings.Contains(c.Detail, "etcd unreadable") {
		t.Fatalf("detail %q does not mention etcd", c.Detail)
	}
}
